package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/wsp"
)

// cmdCorpus dispatches the scenario-corpus toolchain:
//
//	wsp corpus list      [-seed N] [-families a,b]
//	wsp corpus run       [-seed N] [-families a,b] [-strategy route] [-json report.json] [-bench -]
//	wsp corpus calibrate [-seed N] [-families a,b] [-autorows 0,8,16] [-maxwork 0,200000] ...
func cmdCorpus(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: wsp corpus <list|run|calibrate> [flags]")
	}
	switch args[0] {
	case "list":
		return cmdCorpusList(args[1:])
	case "run":
		return cmdCorpusRun(ctx, args[1:])
	case "calibrate":
		return cmdCorpusCalibrate(ctx, args[1:])
	}
	return fmt.Errorf("unknown corpus subcommand %q (want list, run, or calibrate)", args[0])
}

func parseFamilies(csv string) []string {
	if strings.TrimSpace(csv) == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(csv, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// cmdCorpusList enumerates the generator families and, for a seed, the
// reproducible instances each one yields.
func cmdCorpusList(args []string) error {
	fs := flag.NewFlagSet("corpus list", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "corpus seed (same seed → byte-identical instances)")
	families := fs.String("families", "", "comma-separated family filter (empty = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	insts, err := wsp.GenerateCorpus(*seed, parseFamilies(*families)...)
	if err != nil {
		return err
	}
	byFamily := map[string]int{}
	for _, in := range insts {
		byFamily[in.Family]++
	}
	for _, f := range wsp.CorpusFamilies() {
		if n, ok := byFamily[f.Name]; ok {
			fmt.Printf("%s (%d instances): %s\n", f.Name, n, f.Desc)
		}
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nInstance\tProducts\tUnits\tComponents\ttc\tHorizon")
	for _, in := range insts {
		st := wsp.SummarizeTraffic(in.Sys)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\n",
			in.Name, in.Sys.W.NumProducts, in.WL.TotalUnits(), st.Components, st.CycleTime, in.T)
	}
	return tw.Flush()
}

func corpusKnobsFlags(fs *flag.FlagSet) (strat, simplex *string, exact *bool, autoRows, maxNodes, searchPar *int, maxWork *int64) {
	strat = fs.String("strategy", "route", "synthesis strategy: route, flows, or contract")
	simplex = fs.String("simplex", "auto", "exact LP engine: auto, dense, revised, or hybrid")
	exact = fs.Bool("exact", false, "exact rational arithmetic for the contract strategy")
	autoRows = fs.Int("autorows", 0, "SimplexAuto dense/revised crossover (0 = default)")
	maxWork = fs.Int64("maxwork", 0, "per-attempt simplex work budget (0 = default)")
	maxNodes = fs.Int("maxnodes", 0, "per-attempt branch-and-bound node budget (0 = default)")
	searchPar = fs.Int("search-parallel", 0, "B&B subtree workers (0 = sequential; bit-identical results)")
	return
}

// cmdCorpusRun solves the corpus under one knob set and prints per-family
// health: solve rate, verdicts, latency percentiles, deterministic work.
func cmdCorpusRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("corpus run", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "corpus seed (same seed → byte-identical instances)")
	families := fs.String("families", "", "comma-separated family filter (empty = all)")
	label := fs.String("label", "corpus", "report label (benchjson snapshot label)")
	jsonOut := fs.String("json", "", "write the full JSON report to this file")
	bench := fs.String("bench", "", "write benchjson-compatible lines to this file ('-' = stdout)")
	strat, simplex, exact, autoRows, maxNodes, searchPar, maxWork := corpusKnobsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	strategy, err := wsp.ParseStrategy(*strat)
	if err != nil {
		return err
	}
	sx, err := wsp.ParseSimplex(*simplex)
	if err != nil {
		return err
	}
	insts, err := wsp.GenerateCorpus(*seed, parseFamilies(*families)...)
	if err != nil {
		return err
	}
	knobs := wsp.CorpusKnobs{
		Strategy: strategy, Exact: *exact, Simplex: sx, AutoRows: *autoRows,
		WorkBudget: *maxWork, NodeBudget: *maxNodes, SearchParallel: *searchPar,
	}
	start := time.Now()
	rep := wsp.RunCorpus(ctx, insts, knobs, *label, *seed)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Family\tSolved\tVerdicts\tp50ms\tp95ms\tp99ms\tWork")
	for _, f := range rep.Families {
		var verdicts []string
		for _, v := range []wsp.CorpusVerdict{wsp.CorpusInfeasible, wsp.CorpusHorizon,
			wsp.CorpusBudget, wsp.CorpusCanceled, wsp.CorpusError} {
			if n := f.Verdicts[v]; n > 0 {
				verdicts = append(verdicts, fmt.Sprintf("%d %s", n, v))
			}
		}
		vcol := strings.Join(verdicts, ", ")
		if vcol == "" {
			vcol = "-"
		}
		fmt.Fprintf(tw, "%s\t%d/%d\t%s\t%.1f\t%.1f\t%.1f\t%d\n",
			f.Family, f.Solved, f.Instances, vcol, f.P50Millis, f.P95Millis, f.P99Millis, f.Work)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("\n%d instances in %v\n", len(rep.Instances), time.Since(start).Round(time.Millisecond))
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *bench != "" {
		w := os.Stdout
		if *bench != "-" {
			f, err := os.Create(*bench)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := wsp.WriteCorpusBenchLines(w, rep); err != nil {
			return err
		}
	}
	// A cancelled run already drained the remaining instances as canceled
	// verdicts; surface the interruption through the exit code too.
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("corpus run interrupted: %w", wsp.ErrCanceled)
	}
	return nil
}

func parseInt64s(csv string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// cmdCorpusCalibrate grid-searches knob defaults over the corpus and
// prints the scored candidate table with the recommended knob set.
func cmdCorpusCalibrate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("corpus calibrate", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "corpus seed (same seed → byte-identical instances)")
	families := fs.String("families", "stripes", "comma-separated family filter (empty = all)")
	autoRows := fs.String("autorows", "0,8,16", "comma-separated SimplexAuto crossover values")
	maxWork := fs.String("maxwork", "0", "comma-separated per-attempt work budgets")
	maxNodes := fs.String("maxnodes", "0", "comma-separated per-attempt node budgets")
	widths := fs.String("widths", "0", "comma-separated B&B search widths")
	strat := fs.String("strategy", "contract", "base synthesis strategy: route, flows, or contract")
	simplex := fs.String("simplex", "auto", "base exact LP engine: auto, dense, revised, or hybrid")
	if err := fs.Parse(args); err != nil {
		return err
	}
	strategy, err := wsp.ParseStrategy(*strat)
	if err != nil {
		return err
	}
	sx, err := wsp.ParseSimplex(*simplex)
	if err != nil {
		return err
	}
	ars, err := parseInts(*autoRows)
	if err != nil {
		return fmt.Errorf("bad -autorows: %w", err)
	}
	wbs, err := parseInt64s(*maxWork)
	if err != nil {
		return fmt.Errorf("bad -maxwork: %w", err)
	}
	nbs, err := parseInts(*maxNodes)
	if err != nil {
		return fmt.Errorf("bad -maxnodes: %w", err)
	}
	sws, err := parseInts(*widths)
	if err != nil {
		return fmt.Errorf("bad -widths: %w", err)
	}
	insts, err := wsp.GenerateCorpus(*seed, parseFamilies(*families)...)
	if err != nil {
		return err
	}
	spec := wsp.CalibrationSpec{
		Base:     wsp.CorpusKnobs{Strategy: strategy, Simplex: sx},
		AutoRows: ars, WorkBudgets: wbs, NodeBudgets: nbs, SearchWidths: sws,
	}
	start := time.Now()
	table, err := wsp.CalibrateCorpus(ctx, insts, spec)
	if err != nil {
		return err
	}
	if err := table.Format(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\n%d candidates × %d instances in %v\n",
		len(table.Candidates), len(insts), time.Since(start).Round(time.Millisecond))
	return nil
}
