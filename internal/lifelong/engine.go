package lifelong

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/lp"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// The event-driven lifelong engine. The monolithic controller loop is
// split into an explicit state machine with four phases per Step:
//
//	release  — absorb every batch whose release time has arrived, or jump
//	           the clock to the next release when the backlog is empty
//	plan     — rebuild the warehouse with depleted stock, re-wire the
//	           traffic system, and synthesize a plan for the outstanding
//	           demand (core.SolveScratch), with a halved-workload retry
//	           reserved for infeasibility/budget errors
//	execute  — attribute the simulated deliveries FIFO to open batches and
//	           deplete physical stock
//	account  — extend the Report (epoch log, peaks, totals) and advance
//	           the clock past the changeover + servicing time
//
// Observers see each phase's outcome as it happens: OnDelivery per
// (batch, product) attribution, OnEpoch once per completed epoch with a
// cumulative streaming throughput series (sim.Window), OnBatchComplete
// when a batch's last unit lands. Run drives the engine to completion
// with a nil observer and is bit-identical to the pre-engine loop.

// Observer receives engine events as a lifelong run progresses. Callbacks
// fire synchronously on the engine's goroutine, in event order: the
// deliveries of an epoch, then the epoch report, then any batch
// completions that epoch caused. A slow observer stalls the run — stream
// consumers that cannot keep up should buffer on their side.
type Observer interface {
	// OnEpoch fires once per completed epoch, after the epoch's deliveries.
	OnEpoch(EpochReport)
	// OnDelivery fires for every non-empty FIFO attribution of delivered
	// units to an open batch.
	OnDelivery(Delivery)
	// OnBatchComplete fires when the last unit of a batch is delivered.
	OnBatchComplete(batch int, stats BatchStats)
}

// ObserverFuncs adapts plain functions to the Observer interface; nil
// fields are skipped.
type ObserverFuncs struct {
	Epoch         func(EpochReport)
	Delivery      func(Delivery)
	BatchComplete func(batch int, stats BatchStats)
}

// OnEpoch implements Observer.
func (o ObserverFuncs) OnEpoch(r EpochReport) {
	if o.Epoch != nil {
		o.Epoch(r)
	}
}

// OnDelivery implements Observer.
func (o ObserverFuncs) OnDelivery(d Delivery) {
	if o.Delivery != nil {
		o.Delivery(d)
	}
}

// OnBatchComplete implements Observer.
func (o ObserverFuncs) OnBatchComplete(batch int, stats BatchStats) {
	if o.BatchComplete != nil {
		o.BatchComplete(batch, stats)
	}
}

// EpochReport is the observer-facing view of one completed epoch. It
// extends the Report's EpochInfo with the epoch's own delivery and backlog
// state; Report and EpochInfo themselves stay exactly as the batch API
// always returned them.
type EpochReport struct {
	// Epoch is the 1-based epoch index (== Report.Epochs at fire time).
	Epoch int
	EpochInfo
	// Agents is the team size this epoch deployed.
	Agents int
	// Delivered is this epoch's per-product delivery count (clamped to the
	// outstanding demand, i.e. what the run accounted).
	Delivered []int
	// Outstanding is the per-product backlog remaining after this epoch.
	Outstanding []int
	// Throughput is the cumulative units-per-window series over global
	// time (sim.Window bins of Options.ThroughputWindow width), covering
	// every delivery simulated so far.
	Throughput []int
}

// Delivery is one FIFO attribution of delivered units to an open batch.
type Delivery struct {
	Epoch   int // 1-based epoch the units landed in
	Batch   int // index into Report.Batches
	Product int
	Units   int
}

// solveFn is the epoch planner's solver entry point — a seam so tests can
// inject epoch failures without constructing unsolvable instances.
type solveFn func(ctx context.Context, s *traffic.System, wl warehouse.Workload, T int, opts core.Options, sc *core.Scratch) (*core.Result, error)

// Engine steps a lifelong run one event at a time. Create one with
// NewEngine, then call Step until it reports done; Report is valid (and
// partial) at every point in between. An Engine is single-use and not
// safe for concurrent Steps.
type Engine struct {
	s    *traffic.System
	T    int
	opts Options

	sorted []Batch
	rep    *Report

	outstanding []int
	remaining   [][]int
	stock       [][]int
	paths       [][]grid.VertexID
	sc          *core.Scratch

	obs   Observer
	win   *sim.Window
	solve solveFn

	now  int
	next int // next batch to release
	done bool
}

// NewEngine validates batches and prepares a run. Batches sharing a
// release time are merged into one (their demand vectors summed), so
// Report.Batches holds one entry per distinct release time.
func NewEngine(s *traffic.System, batches []Batch, T int, opts Options) (*Engine, error) {
	w := s.W
	p := w.NumProducts
	sorted := append([]Batch(nil), batches...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Release < sorted[b].Release })
	for i, b := range sorted {
		if len(b.Units) != p {
			return nil, fmt.Errorf("lifelong: batch %d has %d demands for %d products", i, len(b.Units), p)
		}
		if b.Release < 0 || b.Release >= T {
			return nil, fmt.Errorf("lifelong: batch %d released at %d outside [0, %d)", i, b.Release, T)
		}
	}
	sorted = mergeSameRelease(sorted)

	rep := &Report{Delivered: make([]int, p)}
	rep.Batches = make([]BatchStats, len(sorted))
	for i, b := range sorted {
		total := 0
		for _, u := range b.Units {
			total += u
		}
		rep.Batches[i] = BatchStats{Release: b.Release, Completed: -1, Units: total}
	}

	e := &Engine{
		s:      s,
		T:      T,
		opts:   opts,
		sorted: sorted,
		rep:    rep,
		// Outstanding demand per product, plus per-batch remaining counts
		// so deliveries can be attributed FIFO to the oldest open batch.
		outstanding: make([]int, p),
		remaining:   make([][]int, len(sorted)),
		// Physical stock depletes across epochs; each epoch solves on a
		// warehouse whose Λ reflects the units already shipped.
		stock: make([][]int, p),
		paths: make([][]grid.VertexID, len(s.Components)),
		// One synthesis scratch for the whole run: every epoch rebuilds the
		// same floorplan with depleted stock, so the structure signature is
		// stable and the ContractILP strategy re-targets one compiled
		// contract model on the residual demand instead of recompiling per
		// epoch (bit-identical to scratchless solves).
		sc:    &core.Scratch{},
		obs:   opts.Observer,
		solve: core.SolveScratch,
	}
	for i, b := range sorted {
		e.remaining[i] = append([]int(nil), b.Units...)
	}
	for k := 0; k < p; k++ {
		e.stock[k] = append([]int(nil), w.Stock[k]...)
	}
	for i, c := range s.Components {
		e.paths[i] = c.Cells
	}
	if e.obs != nil {
		width := opts.ThroughputWindow
		if width <= 0 {
			width = s.CycleTime()
		}
		e.win = sim.NewWindow(width)
	}
	return e, nil
}

// mergeSameRelease collapses batches sharing a release time into one batch
// with the demand vectors summed. The input must be sorted by release and
// validated; the slice is modified in place.
func mergeSameRelease(sorted []Batch) []Batch {
	out := sorted[:0]
	for _, b := range sorted {
		if n := len(out); n > 0 && out[n-1].Release == b.Release {
			merged := append([]int(nil), out[n-1].Units...)
			for k, u := range b.Units {
				merged[k] += u
			}
			out[n-1].Units = merged
			continue
		}
		out = append(out, b)
	}
	return out
}

// Report returns the run report accumulated so far. It is complete once
// Step reports done, and partial (epochs completed so far) before that or
// when a Step fails.
func (e *Engine) Report() *Report { return e.rep }

// Done reports whether the run has finished (successfully or not).
func (e *Engine) Done() bool { return e.done }

// Now returns the engine clock in timesteps.
func (e *Engine) Now() int { return e.now }

// Step advances the run by one event: either a clock jump to the next
// batch release (no epoch planned) or one full epoch — plan, execute,
// account. It returns done=true when every batch has been serviced, or
// with an error when the run cannot continue; the error cases mirror the
// batch Run contract (cancellation wraps lp.ErrCanceled, exhausted
// horizons report the outstanding backlog). Stepping a done engine is a
// no-op returning done=true.
func (e *Engine) Step(ctx context.Context) (bool, error) {
	if e.done {
		return true, nil
	}
	if e.next >= len(e.sorted) && sumPos(e.outstanding) == 0 {
		e.done = true
		return true, nil
	}
	// Release phase: absorb every batch released by `now`.
	for e.next < len(e.sorted) && e.sorted[e.next].Release <= e.now {
		for k, u := range e.sorted[e.next].Units {
			e.outstanding[k] += u
		}
		e.next++
	}
	if sumPos(e.outstanding) == 0 {
		if e.next >= len(e.sorted) {
			e.done = true
			return true, nil
		}
		e.now = e.sorted[e.next].Release
		return false, nil
	}
	// Epoch horizon: until the next release (we re-plan then anyway) or
	// the end of time, minus one cycle-time changeover.
	horizon := e.T - e.now
	if e.next < len(e.sorted) && e.sorted[e.next].Release-e.now < horizon {
		horizon = e.sorted[e.next].Release - e.now
	}
	horizon -= e.s.CycleTime() // changeover charge
	if horizon < e.s.CycleTime() {
		// Too little time to do anything before the next event.
		if e.next < len(e.sorted) {
			e.now = e.sorted[e.next].Release
			return false, nil
		}
		e.done = true
		return true, fmt.Errorf("lifelong: %d units outstanding with no time left", sumPos(e.outstanding))
	}
	res, err := e.planEpoch(ctx, horizon)
	if err != nil {
		e.done = true
		return true, err
	}
	e.executeEpoch(res, horizon)
	if e.now >= e.T && (e.next < len(e.sorted) || sumPos(e.outstanding) > 0) {
		e.done = true
		return true, fmt.Errorf("lifelong: horizon exhausted with %d units outstanding", sumPos(e.outstanding))
	}
	return false, nil
}

// retryable reports whether an epoch solve failure may be cured by a
// smaller workload: the backlog didn't fit the epoch horizon or the solver
// budget. Anything else (construction bugs, validation failures, unknown
// strategies) propagates directly — retrying would only mask it.
func retryable(err error) bool {
	return errors.Is(err, flow.ErrInfeasible) ||
		errors.Is(err, flow.ErrHorizonTooShort) ||
		errors.Is(err, lp.ErrBudgetExhausted)
}

// planEpoch rebuilds the warehouse with the depleted stock, re-wires the
// same traffic-system components onto it, and synthesizes a plan for the
// outstanding demand. Infeasibility/budget failures are retried once with
// a halved workload before giving up.
func (e *Engine) planEpoch(ctx context.Context, horizon int) (*core.Result, error) {
	w := e.s.W
	we, err := warehouse.New(w.Graph, w.ShelfAccess, w.Stations, w.NumProducts, e.stock)
	if err != nil {
		return nil, err
	}
	se, err := traffic.Build(we, e.paths)
	if err != nil {
		return nil, err
	}
	wl, err := warehouse.NewWorkload(we, clampByStock(we, e.outstanding))
	if err != nil {
		return nil, err
	}
	res, err := e.solve(ctx, se, wl, horizon, e.opts.Core, e.sc)
	if err != nil {
		if errors.Is(err, lp.ErrCanceled) {
			return nil, fmt.Errorf("lifelong: run canceled in epoch at t=%d: %w", e.now, err)
		}
		if !retryable(err) {
			return nil, fmt.Errorf("lifelong: epoch at t=%d failed: %w", e.now, err)
		}
		// The epoch may be too short for the whole backlog; retry with a
		// reduced target before giving up.
		half := halve(wl.Units)
		wl2, err2 := warehouse.NewWorkload(we, half)
		if err2 != nil {
			return nil, err
		}
		res, err = e.solve(ctx, se, wl2, horizon, e.opts.Core, e.sc)
		if err != nil {
			return nil, fmt.Errorf("lifelong: epoch at t=%d failed: %w", e.now, err)
		}
	}
	return res, nil
}

// executeEpoch attributes the simulated deliveries FIFO to open batches,
// depletes physical stock, extends the Report, emits observer events, and
// advances the clock past the changeover + servicing time.
func (e *Engine) executeEpoch(res *core.Result, horizon int) {
	p := e.s.W.NumProducts
	e.rep.Epochs++
	epoch := e.rep.Epochs
	if res.Stats.Agents > e.rep.PeakAgents {
		e.rep.PeakAgents = res.Stats.Agents
	}
	var epochDelivered []int
	if e.obs != nil {
		epochDelivered = make([]int, p)
	}
	for k := 0; k < p; k++ {
		delivered := res.Sim.Delivered[k]
		if delivered > e.outstanding[k] {
			delivered = e.outstanding[k]
		}
		e.outstanding[k] -= delivered
		e.rep.Delivered[k] += delivered
		if epochDelivered != nil {
			epochDelivered[k] = delivered
		}
		deplete(e.stock[k], delivered)
		for bi := range e.remaining {
			if delivered == 0 {
				break
			}
			take := e.remaining[bi][k]
			if take > delivered {
				take = delivered
			}
			e.remaining[bi][k] -= take
			delivered -= take
			if take > 0 && e.obs != nil {
				e.obs.OnDelivery(Delivery{Epoch: epoch, Batch: bi, Product: k, Units: take})
			}
		}
	}
	epochEnd := e.now + e.s.CycleTime() + res.Sim.ServicedAt
	info := EpochInfo{
		Start:      e.now,
		Horizon:    horizon,
		Changeover: e.s.CycleTime(),
		ServicedAt: res.Sim.ServicedAt,
		End:        epochEnd,
	}
	e.rep.EpochLog = append(e.rep.EpochLog, info)
	if e.obs != nil {
		// Deliveries simulated this epoch land on the global clock after
		// the changeover; the window accumulates the raw simulation counts
		// (before clamping to outstanding), i.e. physical station drops.
		base := e.now + e.s.CycleTime()
		for _, t := range res.Sim.DeliveryTimes {
			e.win.Observe(base + t)
		}
		e.obs.OnEpoch(EpochReport{
			Epoch:       epoch,
			EpochInfo:   info,
			Agents:      res.Stats.Agents,
			Delivered:   epochDelivered,
			Outstanding: append([]int(nil), e.outstanding...),
			Throughput:  e.win.Bins(),
		})
	}
	for bi := range e.remaining {
		if e.rep.Batches[bi].Completed < 0 && sumPos(e.remaining[bi]) == 0 && e.sorted[bi].Release <= e.now {
			e.rep.Batches[bi].Completed = epochEnd
			if e.obs != nil {
				e.obs.OnBatchComplete(bi, e.rep.Batches[bi])
			}
		}
	}
	e.now = epochEnd
}
