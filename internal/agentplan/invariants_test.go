package agentplan

import (
	"testing"

	"repro/internal/cycles"
	"repro/internal/grid"
	"repro/internal/warehouse"
)

// TestAlgorithmOneInvariants checks the realization against the §IV-C
// movement discipline:
//
//   - an agent crosses from one component to the next at most once per
//     cycle period (the ADVANCE_T gate of Algorithm 1);
//   - agents only ever occupy cells of their current cycle's components;
//   - an agent entering a component arrives at its entry cell.
func TestAlgorithmOneInvariants(t *testing.T) {
	w, s := ringSystem(t)
	wl := mustWorkload(t, w, 10, 6)
	cs, err := cycles.Synthesize(s, wl, 800, cycles.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := Realize(cs, wl, 800)
	if err != nil {
		t.Fatal(err)
	}
	tc := cs.Tc

	// Reconstruct per-agent component occupancy from the plan.
	cellComp := make(map[grid.VertexID]int)
	entry := make(map[int]grid.VertexID)
	for _, c := range s.Components {
		entry[int(c.ID)] = c.Entry()
		for _, v := range c.Cells {
			cellComp[v] = int(c.ID)
		}
	}
	// Build the set of components per cycle, and map agents to cycles by
	// replaying the deterministic construction order of Realize.
	agentCycle := make([]int, 0, plan.NumAgents())
	for ci, cyc := range cs.Cycles {
		for range cyc.Components {
			agentCycle = append(agentCycle, ci)
		}
	}
	if len(agentCycle) != plan.NumAgents() {
		t.Fatalf("agent count mismatch: %d vs %d", len(agentCycle), plan.NumAgents())
	}
	cycleComps := make([]map[int]bool, len(cs.Cycles))
	for ci, cyc := range cs.Cycles {
		cycleComps[ci] = make(map[int]bool)
		for _, comp := range cyc.Components {
			cycleComps[ci][int(comp)] = true
		}
	}

	for i := 0; i < plan.NumAgents(); i++ {
		crossings := 0
		period := -1
		for tt := 0; tt+1 < plan.Horizon(); tt++ {
			cur := cellComp[plan.States[i][tt].Vertex]
			next := cellComp[plan.States[i][tt+1].Vertex]
			if !cycleComps[agentCycle[i]][cur] {
				t.Fatalf("agent %d at t=%d occupies component %d outside its cycle", i, tt, cur)
			}
			if cur == next {
				continue
			}
			// Component crossing: must land on the entry cell.
			if plan.States[i][tt+1].Vertex != entry[next] {
				t.Errorf("agent %d enters component %d at a non-entry cell (t=%d)", i, next, tt+1)
			}
			p := (tt + 1) / tc
			if p == period {
				crossings++
				t.Errorf("agent %d crossed components twice in period %d", i, p)
			} else {
				period = p
				crossings = 1
			}
		}
	}
}

// TestRealizeDeterministic: two realizations of the same cycle set must be
// identical (the realization is a pure function of its inputs).
func TestRealizeDeterministic(t *testing.T) {
	w, s := ringSystem(t)
	wl := mustWorkload(t, w, 7, 3)
	cs, err := cycles.Synthesize(s, wl, 600, cycles.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p1, st1, err := Realize(cs, wl, 600)
	if err != nil {
		t.Fatal(err)
	}
	p2, st2, err := Realize(cs, wl, 600)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Delivered[0] != st2.Delivered[0] || st1.ServicedAt != st2.ServicedAt {
		t.Error("stats differ between identical runs")
	}
	for i := range p1.States {
		for tt := range p1.States[i] {
			if p1.States[i][tt] != p2.States[i][tt] {
				t.Fatalf("plans diverge at agent %d t=%d", i, tt)
			}
		}
	}
	_ = w
}

// TestRealizeAgentsStayEmptyAfterQuota: once all quotas are delivered no
// agent should be carrying anything at the horizon.
func TestRealizeAgentsStayEmptyAfterQuota(t *testing.T) {
	w, s := ringSystem(t)
	wl := mustWorkload(t, w, 4, 2)
	cs, err := cycles.Synthesize(s, wl, 900, cycles.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, stats, err := Realize(cs, wl, 900)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ServicedAt < 0 {
		t.Fatal("not serviced")
	}
	last := plan.Horizon() - 1
	for i := 0; i < plan.NumAgents(); i++ {
		if plan.States[i][last].Carried != warehouse.NoProduct {
			t.Errorf("agent %d still carrying at the horizon", i)
		}
	}
}
