package server

import (
	"math"
	"sync"
	"time"
)

// Admission control: a request is admitted only if (1) an in-flight slot is
// free and (2) its client's token bucket covers the solve's work cost. Both
// checks are non-blocking — an over-admitted or over-budget request is
// rejected immediately with 429 + Retry-After, so load sheds at the door
// instead of queueing unboundedly in front of the solver pool.

// denial explains a rejected admission.
type denial struct {
	reason     string // "load" (semaphore full) or "budget" (bucket dry)
	retryAfter time.Duration
}

type admission struct {
	slots chan struct{} // buffered semaphore; len() = solves in flight
	buckets
}

func newAdmission(cfg Config) *admission {
	return &admission{
		slots: make(chan struct{}, cfg.MaxInFlight),
		buckets: buckets{
			rate:  float64(cfg.ClientRate),
			burst: float64(cfg.ClientBurst),
			max:   cfg.MaxClients,
			now:   cfg.Now,
			m:     make(map[string]*bucket),
		},
	}
}

// admit reserves a slot and charges cost work units to client. On success
// it returns a release closure (idempotence is the caller's duty — call it
// exactly once) and the post-admission occupancy in [0,1], the degradation
// ladder's load sample. On rejection release is nil and d explains why.
func (a *admission) admit(client string, cost int64) (release func(), occupancy float64, d *denial) {
	select {
	case a.slots <- struct{}{}:
	default:
		// Full house. The earliest a slot can free up is when one of the
		// in-flight solves finishes; one second is the honest "soon".
		a.recordLoadReject(client)
		return nil, 1, &denial{reason: "load", retryAfter: time.Second}
	}
	if ok, retry := a.take(client, float64(cost)); !ok {
		<-a.slots
		return nil, 0, &denial{reason: "budget", retryAfter: retry}
	}
	// The load sample is the occupancy this request FOUND on arrival
	// (itself excluded): serial traffic on an idle server reads 0 however
	// small MaxInFlight is, while sustained overlap — requests queueing on
	// top of each other — reads high. Saturation beyond the slot count
	// shows up as rejections, which the degrader weighs separately.
	occ := float64(len(a.slots)-1) / float64(cap(a.slots))
	return func() { <-a.slots }, occ, nil
}

// buckets is the per-client token-bucket table. Budgets are measured in
// the LP's deterministic MaxWork units — the one load currency that does
// not depend on machine speed — refilled at rate units/sec up to burst.
type buckets struct {
	mu    sync.Mutex
	rate  float64
	burst float64
	max   int
	now   func() time.Time
	m     map[string]*bucket
}

// bucket is one client's admission state: the token balance plus the
// per-client ledger exported on /metrics and /debug/vars. The ledger rides
// the bucket on purpose — the table is already bounded by evictStalest, so
// per-client metric cardinality can never exceed the client-table limit.
type bucket struct {
	tokens float64
	last   time.Time

	requests int64   // admission decisions involving this client
	rejected int64   // 429s: semaphore full or bucket dry
	charged  float64 // work units actually charged (admitted requests)
}

// get returns client's bucket refilled to now, creating it (and bounding
// the table) when absent. Callers hold b.mu.
func (b *buckets) get(client string, now time.Time) *bucket {
	bk := b.m[client]
	if bk == nil {
		if len(b.m) >= b.max {
			b.evictStalest()
		}
		bk = &bucket{tokens: b.burst, last: now}
		b.m[client] = bk
		return bk
	}
	if dt := now.Sub(bk.last).Seconds(); dt > 0 {
		bk.tokens = math.Min(b.burst, bk.tokens+dt*b.rate)
	}
	bk.last = now
	return bk
}

// take charges cost to client's bucket. When the bucket is short it leaves
// the balance untouched and reports how long the refill needs to cover the
// deficit.
func (b *buckets) take(client string, cost float64) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bk := b.get(client, b.now())
	bk.requests++
	if bk.tokens >= cost {
		bk.tokens -= cost
		bk.charged += cost
		return true, 0
	}
	bk.rejected++
	deficit := cost - bk.tokens
	retry := time.Duration(math.Ceil(deficit/b.rate)) * time.Second
	if retry < time.Second {
		retry = time.Second
	}
	return false, retry
}

// recordLoadReject attributes a semaphore-full rejection to the client's
// ledger (the bucket balance is untouched — no work ran).
func (b *buckets) recordLoadReject(client string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bk := b.get(client, b.now())
	bk.requests++
	bk.rejected++
}

// ClientStats is one client's admission ledger, as exported on
// /debug/vars.
type ClientStats struct {
	Requests    int64 `json:"requests_total"`
	Rejected    int64 `json:"rejected_total"`
	WorkCharged int64 `json:"work_charged_total"`
}

// clientStats snapshots the per-client ledgers. The map is freshly
// allocated; cardinality is bounded by the bucket-table limit.
func (b *buckets) clientStats() map[string]ClientStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]ClientStats, len(b.m))
	for id, bk := range b.m {
		out[id] = ClientStats{
			Requests:    bk.requests,
			Rejected:    bk.rejected,
			WorkCharged: int64(bk.charged),
		}
	}
	return out
}

// evictStalest drops the least-recently charged client so the table stays
// bounded under client-ID churn. Callers hold b.mu.
func (b *buckets) evictStalest() {
	var victim string
	var oldest time.Time
	first := true
	for id, bk := range b.m {
		if first || bk.last.Before(oldest) {
			victim, oldest, first = id, bk.last, false
		}
	}
	if !first {
		delete(b.m, victim)
	}
}
