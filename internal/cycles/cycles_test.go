package cycles

import (
	"context"
	"testing"

	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// ringSystem builds the 10x6 ring warehouse (see flow tests): one shelving
// row stocking products 0 and 1, one station queue, two transports.
func ringSystem(t *testing.T) (*warehouse.Warehouse, *traffic.System) {
	t.Helper()
	g, _, stations, err := grid.Parse(
		"..........\n" +
			".@@######.\n" +
			".########.\n" +
			".########.\n" +
			".########.\n" +
			"....T.....")
	if err != nil {
		t.Fatal(err)
	}
	shelfAccess := []grid.VertexID{
		g.At(grid.Coord{X: 1, Y: 5}),
		g.At(grid.Coord{X: 2, Y: 5}),
	}
	var stationVs []grid.VertexID
	for _, c := range stations {
		stationVs = append(stationVs, g.At(c))
	}
	w, err := warehouse.New(g, shelfAccess, stationVs, 2, [][]int{{300, 0}, {0, 300}})
	if err != nil {
		t.Fatal(err)
	}
	at := func(x, y int) grid.VertexID { return g.At(grid.Coord{X: x, Y: y}) }
	var bottom, east, top, west []grid.VertexID
	for x := 0; x <= 9; x++ {
		bottom = append(bottom, at(x, 0))
	}
	for y := 1; y <= 5; y++ {
		east = append(east, at(9, y))
	}
	for x := 8; x >= 0; x-- {
		top = append(top, at(x, 5))
	}
	for y := 4; y >= 1; y-- {
		west = append(west, at(0, y))
	}
	s, err := traffic.Build(w, [][]grid.VertexID{bottom, east, top, west})
	if err != nil {
		t.Fatal(err)
	}
	return w, s
}

func wl(t *testing.T, w *warehouse.Warehouse, units ...int) warehouse.Workload {
	t.Helper()
	out, err := warehouse.NewWorkload(w, units)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFromFlowSetRing(t *testing.T) {
	w, s := ringSystem(t)
	workload := wl(t, w, 10, 5)
	set, err := flow.SynthesizeSequential(context.Background(), s, workload, 600, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := FromFlowSet(set, workload)
	if err != nil {
		t.Fatal(err)
	}
	if errs := cs.Check(workload); len(errs) > 0 {
		t.Fatalf("Check: %v", errs)
	}
	if len(cs.Cycles) == 0 {
		t.Fatal("no cycles produced")
	}
	// Every cycle must loop through the ring's four components.
	for _, c := range cs.Cycles {
		if c.Len() < 4 {
			t.Errorf("cycle of %d components, want >= 4 on a 4-component ring", c.Len())
		}
	}
	if cs.NumAgents() == 0 {
		t.Error("NumAgents = 0")
	}
}

func TestFromFlowSetContractPath(t *testing.T) {
	w, s := ringSystem(t)
	workload := wl(t, w, 6, 3)
	set, err := flow.SynthesizeContract(context.Background(), s, workload, 600, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := FromFlowSet(set, workload)
	if err != nil {
		t.Fatal(err)
	}
	if errs := cs.Check(workload); len(errs) > 0 {
		t.Fatalf("Check: %v", errs)
	}
}

func TestSynthesizeRoutesRing(t *testing.T) {
	w, s := ringSystem(t)
	workload := wl(t, w, 20, 12)
	cs, err := Synthesize(s, workload, 600, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if errs := cs.Check(workload); len(errs) > 0 {
		t.Fatalf("Check: %v", errs)
	}
	total := make([]int, 2)
	for _, c := range cs.Cycles {
		for _, leg := range c.Legs {
			total[leg.Product] += leg.Quota
		}
	}
	if total[0] < 20 || total[1] < 12 {
		t.Errorf("leg quotas %v below demand [20 12]", total)
	}
}

func TestSynthesizeRoutesZeroWorkload(t *testing.T) {
	w, s := ringSystem(t)
	workload := wl(t, w, 0, 0)
	cs, err := Synthesize(s, workload, 600, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Cycles) != 0 {
		t.Errorf("cycles = %d, want 0", len(cs.Cycles))
	}
}

func TestSynthesizeRoutesCapacityExhaustion(t *testing.T) {
	w, s := ringSystem(t)
	// Demand large enough to need more concurrent cycles than the ring's
	// bottleneck (the 4-cell west transport, capacity 2) can host: with
	// T=120 (qc=6, qeff small) each cycle delivers few units.
	workload := wl(t, w, 300, 300)
	if _, err := Synthesize(s, workload, 120, Options{}); err == nil {
		t.Error("route packing accepted an instance beyond capacity")
	}
}

func TestSynthesizeRoutesShortHorizon(t *testing.T) {
	w, s := ringSystem(t)
	workload := wl(t, w, 1, 0)
	if _, err := Synthesize(s, workload, 5, Options{}); err == nil {
		t.Error("horizon shorter than one period accepted")
	}
}

func TestCheckCatchesBadCycle(t *testing.T) {
	w, s := ringSystem(t)
	workload := wl(t, w, 0, 0)
	cs := &Set{S: s, Tc: s.CycleTime(), Qc: 10, QEff: 8}
	// A cycle whose consecutive components are not Gs arcs.
	cs.Cycles = append(cs.Cycles, &Cycle{
		Components: []traffic.ComponentID{0, 2},
		Legs:       []Leg{{PickIdx: 0, DropIdx: 0, Product: 0, Quota: 0}},
	})
	if errs := cs.Check(workload); len(errs) == 0 {
		t.Error("Check accepted a non-cycle")
	}
}

func TestCheckCatchesOverCapacity(t *testing.T) {
	w, s := ringSystem(t)
	workload := wl(t, w, 0, 0)
	cs := &Set{S: s, Tc: s.CycleTime(), Qc: 10, QEff: 8}
	// The ring loop 0->1->2->3; west (id 3) has capacity 2, so three copies
	// exceed it.
	row := s.ShelvingRows()[0]
	queue := s.StationQueues()[0]
	loop := []traffic.ComponentID{queue, 1, row, 3}
	for i := 0; i < 3; i++ {
		cs.Cycles = append(cs.Cycles, &Cycle{
			Components: loop,
			Legs:       []Leg{{PickIdx: 2, DropIdx: 0, Product: 0, Quota: 1}},
		})
	}
	errs := cs.Check(workload)
	found := false
	for _, e := range errs {
		if contains(e.Error(), "capacity") {
			found = true
		}
	}
	if !found {
		t.Errorf("Check missed capacity violation: %v", errs)
	}
}

func TestCheckCatchesQuotaBeyondStockAndThroughput(t *testing.T) {
	w, s := ringSystem(t)
	workload := wl(t, w, 0, 0)
	row := s.ShelvingRows()[0]
	queue := s.StationQueues()[0]
	loop := []traffic.ComponentID{queue, 1, row, 3}
	cs := &Set{S: s, Tc: s.CycleTime(), Qc: 10, QEff: 8}
	cs.Cycles = []*Cycle{{
		Components: loop,
		Legs:       []Leg{{PickIdx: 2, DropIdx: 0, Product: 0, Quota: 301}}, // stock is 300
	}}
	errs := cs.Check(workload)
	if len(errs) == 0 {
		t.Error("Check accepted quota beyond stock and throughput")
	}
}

func TestCheckCatchesUnmetDemand(t *testing.T) {
	w, s := ringSystem(t)
	workload := wl(t, w, 5, 0)
	cs := &Set{S: s, Tc: s.CycleTime(), Qc: 10, QEff: 8}
	errs := cs.Check(workload)
	if len(errs) == 0 {
		t.Error("Check accepted an empty cycle set against positive demand")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
