package flow

import (
	"testing"

	"repro/internal/contracts"
	"repro/internal/lp"
	"repro/internal/traffic"
)

// TestComponentContractRefinesRoadContract exercises the contract algebra's
// refinement check on the real domain: every compiled component contract
// must refine the generic "safe road" contract for its component — one that
// assumes the same capacity bound and guarantees only that the component
// neither creates nor destroys agents (total outflow ≤ total inflow plus
// local pickups, a weakening of the full conservation equations).
func TestComponentContractRefinesRoadContract(t *testing.T) {
	_, s := ringSystem(t)
	qc := 10
	for _, comp := range s.Components {
		cc, err := CompileComponentContract(s, comp.ID, qc)
		if err != nil {
			t.Fatal(err)
		}
		road := genericRoadContract(t, s, comp.ID, cc)
		ok, err := contracts.Refines(cc, road)
		if err != nil {
			t.Fatalf("component %d: %v", comp.ID, err)
		}
		if !ok {
			t.Errorf("component %d (%v) does not refine the generic road contract", comp.ID, comp.Kind)
		}
	}
}

// genericRoadContract builds the weak specification: same assumption, and
// the guarantee Σ_out f ≤ Σ_in f + Σ_k fin_k (agents cannot materialize).
func genericRoadContract(t *testing.T, s *traffic.System, ci traffic.ComponentID, cc *contracts.Contract) *contracts.Contract {
	t.Helper()
	road := contracts.New("road")
	for _, spec := range cc.Vars {
		if err := road.DeclareVar(spec); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range cc.Assumptions {
		if err := road.Assume(a); err != nil {
			t.Fatal(err)
		}
	}
	p := s.W.NumProducts
	var terms []contracts.LinTerm
	for _, j := range s.Outlets[ci] {
		for k := 0; k <= p; k++ {
			terms = append(terms, contracts.LT(1, flowVarName(ci, j, k)))
		}
	}
	for _, j := range s.Inlets[ci] {
		for k := 0; k <= p; k++ {
			terms = append(terms, contracts.LT(-1, flowVarName(j, ci, k)))
		}
	}
	if s.Components[ci].Kind == traffic.ShelvingRow {
		// Pickups add carried agents but consume empty ones 1:1, so they do
		// not change the total; nothing extra to add. (The weak contract
		// only rules out creation.)
		_ = p
	}
	if err := road.Guarantee(contracts.CT("noCreation", lp.LE, 0, terms...)); err != nil {
		t.Fatal(err)
	}
	return road
}

// flowVarName mirrors the unexported naming scheme (kept in sync by the
// compiler tests).
func flowVarName(i, j traffic.ComponentID, k int) string { return flowVar(i, j, k) }
