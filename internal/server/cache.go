package server

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/lp"
	"repro/wsp"
)

// scratchCache shares warm solve scratches — compiled contract systems,
// solver arenas, packing buffers — across concurrent clients, keyed by
// traffic.StructureSignature. A wsp.Scratch is warm only for the topology
// it last solved, so the cache keeps a bounded free list per signature and
// hands a request a scratch that already compiled ITS topology whenever
// one is idle; results are bit-identical either way (wsp.Scratch contract).
//
// Compilation is single-flighted: the first request on an unseen signature
// becomes the compile leader and runs on a cold scratch; concurrent
// requests for the same signature wait (bounded by their own deadline) for
// the leader's scratch to come back warm instead of all paying the same
// compilation. Signatures are evicted LRU beyond the configured bound.
type scratchCache struct {
	met *metrics

	mu      sync.Mutex
	cap     int // max distinct signatures
	perSig  int // max idle scratches kept per signature
	tick    int64
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	free     []*wsp.Scratch
	compiled bool          // a scratch for this signature has been released warm
	leader   bool          // a cold compile is in flight
	ready    chan struct{} // closed when compiled flips true
	lastUse  int64
}

func newScratchCache(cfg Config, met *metrics) *scratchCache {
	return &scratchCache{
		met:     met,
		cap:     cfg.CacheSignatures,
		perSig:  cfg.CachePerSignature,
		entries: make(map[string]*cacheEntry),
	}
}

// checkout returns a scratch for the signature: a warm one when idle, a
// cold one when this request is the compile leader or warm supply is
// outrun by demand. It blocks only behind a single-flight compile, and
// then only until ctx fires.
func (c *scratchCache) checkout(ctx context.Context, sig string) (*wsp.Scratch, error) {
	c.mu.Lock()
	for {
		e := c.entries[sig]
		if e == nil {
			e = &cacheEntry{ready: make(chan struct{})}
			c.entries[sig] = e
			c.evictOverCap(sig)
		}
		c.tick++
		e.lastUse = c.tick
		if n := len(e.free); n > 0 {
			sc := e.free[n-1]
			e.free = e.free[:n-1]
			c.mu.Unlock()
			c.met.cacheHits.Add(1)
			return sc, nil
		}
		if e.compiled || !e.leader {
			// Warm supply outrun (or we are the first): go cold. The
			// leader flag makes later arrivals on this signature wait for
			// exactly one compile instead of stampeding.
			e.leader = true
			c.mu.Unlock()
			c.met.cacheMisses.Add(1)
			return wsp.NewScratch(), nil
		}
		// A compile is in flight for this signature: wait for its scratch.
		ready := e.ready
		c.mu.Unlock()
		c.met.cacheWaits.Add(1)
		select {
		case <-ready:
		case <-ctx.Done():
			return nil, lp.WrapCancelCause(ctx,
				fmt.Errorf("server: canceled waiting for model compilation: %w", lp.ErrCanceled))
		}
		c.mu.Lock()
	}
}

// release returns a scratch to its signature's free list (dropped when the
// signature was evicted meanwhile or the list is full) and wakes
// single-flight waiters.
func (c *scratchCache) release(sig string, sc *wsp.Scratch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[sig]
	if e == nil {
		return // evicted while checked out
	}
	c.markCompiled(e)
	if len(e.free) < c.perSig {
		e.free = append(e.free, sc)
	}
}

// discard is release for a scratch that must not be reused — one whose
// solve panicked may hold partially mutated state. Waiters are still
// woken: the compile outcome is unknown, and letting each retry cold beats
// leaving them parked until their deadlines.
func (c *scratchCache) discard(sig string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[sig]; e != nil {
		c.markCompiled(e)
	}
}

// markCompiled flips the entry to its steady state and releases the
// single-flight gate. Callers hold c.mu.
func (c *scratchCache) markCompiled(e *cacheEntry) {
	if !e.compiled {
		e.compiled = true
		e.leader = false
		close(e.ready)
	}
}

// evictOverCap drops least-recently-used signatures beyond the cap,
// sparing keep (the entry being inserted) and entries whose single-flight
// gate is still open — evicting those would strand their waiters.
// Callers hold c.mu.
func (c *scratchCache) evictOverCap(keep string) {
	for len(c.entries) > c.cap {
		victim := ""
		var oldest int64
		for sig, e := range c.entries {
			if sig == keep || (!e.compiled && e.leader) {
				continue
			}
			if victim == "" || e.lastUse < oldest {
				victim, oldest = sig, e.lastUse
			}
		}
		if victim == "" {
			return // everything else is mid-compile; allow the overshoot
		}
		delete(c.entries, victim)
		c.met.cacheEvictions.Add(1)
	}
}
