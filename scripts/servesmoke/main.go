// Command servesmoke is the `make serve-smoke` driver: it builds wspd,
// starts it on an ephemeral port, performs one /healthz probe and one
// /v1/solve, then sends SIGTERM and requires a drain-clean exit 0 — the
// daemon's whole lifecycle contract (serve → answer → drain), end to end,
// with no curl dependency.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve-smoke:", err)
		os.Exit(1)
	}
	fmt.Println("serve-smoke: ok (healthz + solve + drain-clean exit 0)")
}

func run() error {
	dir, err := os.MkdirTemp("", "wspd-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "wspd")

	build := exec.Command("go", "build", "-o", bin, "./cmd/wspd")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building wspd: %w", err)
	}

	daemon := exec.Command(bin, "-addr", "127.0.0.1:0", "-strategy", "route")
	stderr, err := daemon.StderrPipe()
	if err != nil {
		return err
	}
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("starting wspd: %w", err)
	}
	// On any failure below, don't leave the daemon running.
	defer daemon.Process.Kill()

	// The daemon logs "wspd: serving on 127.0.0.1:PORT (...)" once bound.
	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, line)
			if i := strings.Index(line, "serving on "); i >= 0 {
				rest := line[i+len("serving on "):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				select {
				case addr <- rest:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case a := <-addr:
		base = "http://" + a
	case <-time.After(10 * time.Second):
		return fmt.Errorf("wspd did not report its listen address in 10s")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	reqBody := `{"map":"sorting","units":120,"horizon":3600,"deadline_ms":60000}`
	resp, err = http.Post(base+"/v1/solve", "application/json", strings.NewReader(reqBody))
	if err != nil {
		return fmt.Errorf("solve: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("solve: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var solved struct {
		OK     bool `json:"ok"`
		Agents int  `json:"agents"`
	}
	if err := json.Unmarshal(body, &solved); err != nil || !solved.OK || solved.Agents <= 0 {
		return fmt.Errorf("solve: implausible response %s (err=%v)", bytes.TrimSpace(body), err)
	}
	fmt.Printf("serve-smoke: solved sorting/120 with %d agents\n", solved.Agents)

	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("wspd exited dirty after SIGTERM: %w", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("wspd did not exit within 30s of SIGTERM")
	}
	return nil
}
