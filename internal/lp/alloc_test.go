package lp

import (
	"math/big"
	"testing"
)

// parityProblem builds a deliberately branchy feasibility ILP: Σ 2·x_i over
// 0/1 variables can never equal an odd RHS, so branch and bound explores
// nodes until MaxNodes with a deterministic node count, which lets the test
// below measure the marginal allocation cost of one node.
func parityProblem(nVars int) *Problem {
	p := &Problem{}
	terms := make([]Term, nVars)
	for i := 0; i < nVars; i++ {
		v := p.AddIntVar("x", big.NewRat(0, 1), big.NewRat(1, 1))
		terms[i] = T(v, 2)
	}
	p.AddConstraint("odd", terms, EQ, big.NewRat(int64(nVars+nVars%2+1), 1))
	return p
}

// TestSolveILPNodeAllocations pins the branch-and-bound allocation regime:
// with the bound diff chain replacing per-node bound clones and one warm
// tableau arena replacing per-node standardization, visiting one more node
// must cost O(1) allocations (a diff node, the two branch bounds, a few
// rationals) — NOT O(vars) clones or an O(m·n) tableau rebuild, which is
// what the seed implementation paid per node.
func TestSolveILPNodeAllocations(t *testing.T) {
	const nVars = 48
	p := parityProblem(nVars)
	run := func(maxNodes int) float64 {
		return testing.AllocsPerRun(5, func() {
			sol, err := SolveILP(p, ILPOptions{Engine: EngineExact, MaxNodes: maxNodes})
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != StatusLimit {
				t.Fatalf("status = %v, want limit", sol.Status)
			}
		})
	}
	few, many := run(8), run(208)
	perNode := (many - few) / 200
	t.Logf("allocs: %0.0f @ 8 nodes, %0.0f @ 208 nodes -> %0.2f allocs/node", few, many, perNode)
	// The seed implementation re-standardized each node: ≥ m·n tableau cells
	// plus four bound-slice clones, i.e. thousands of allocations per node
	// at this size. The warm arena needs only the node bookkeeping.
	if perNode > 40 {
		t.Errorf("per-node allocations = %0.1f, want O(1) (≤ 40): bound diff chain or tableau arena regressed", perNode)
	}
	// And the node bookkeeping must not scale with the variable count.
	pBig := parityProblem(4 * nVars)
	runBig := func(maxNodes int) float64 {
		return testing.AllocsPerRun(5, func() {
			sol, err := SolveILP(pBig, ILPOptions{Engine: EngineExact, MaxNodes: maxNodes})
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != StatusLimit {
				t.Fatalf("status = %v, want limit", sol.Status)
			}
		})
	}
	fewB, manyB := runBig(8), runBig(208)
	perNodeBig := (manyB - fewB) / 200
	t.Logf("4x vars: %0.2f allocs/node", perNodeBig)
	if perNodeBig > 40 {
		t.Errorf("per-node allocations at 4x vars = %0.1f, want O(1) (≤ 40)", perNodeBig)
	}
}
