package flow

import (
	"context"
	"fmt"
	"math/big"

	"repro/internal/contracts"
	"repro/internal/lp"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// Variable naming scheme shared by the contract compiler and the
// assignment-to-Set decoder. Product indices are zero-padded so the sorted
// variable order is stable and readable.
func flowVar(i, j traffic.ComponentID, k int) string { return fmt.Sprintf("f_%03d_%03d_%03d", i, j, k) }
func finVar(i traffic.ComponentID, k int) string     { return fmt.Sprintf("fin_%03d_%03d", i, k) }
func foutVar(i traffic.ComponentID, k int) string    { return fmt.Sprintf("fout_%03d_%03d", i, k) }

// CompileComponentContract builds the A/G contract C̃i of one traffic-system
// component per §IV-D. The flow variables it shares with its neighbors'
// contracts carry the same names, so composition connects them.
//
// The commodity index s.W.NumProducts denotes ρ0 (empty agents).
func CompileComponentContract(s *traffic.System, ci traffic.ComponentID, qc int) (*contracts.Contract, error) {
	w := s.W
	p := w.NumProducts
	empty := p
	comp := s.Components[ci]
	c := contracts.New(fmt.Sprintf("C%d(%s)", ci, comp.Kind))

	declare := func(name string) error { return c.DeclareVar(contracts.NatSpec(name)) }
	// Flow variables on every incident arc.
	for _, j := range s.Inlets[ci] {
		for k := 0; k <= p; k++ {
			if err := declare(flowVar(j, ci, k)); err != nil {
				return nil, err
			}
		}
	}
	for _, j := range s.Outlets[ci] {
		for k := 0; k <= p; k++ {
			if err := declare(flowVar(ci, j, k)); err != nil {
				return nil, err
			}
		}
	}
	isRow := comp.Kind == traffic.ShelvingRow
	isQueue := comp.Kind == traffic.StationQueue
	if isRow {
		for k := 0; k < p; k++ {
			if err := declare(finVar(ci, k)); err != nil {
				return nil, err
			}
		}
	}
	if isQueue {
		for k := 0; k < p; k++ {
			if err := declare(foutVar(ci, k)); err != nil {
				return nil, err
			}
		}
	}

	// Assumption: Σ_{j∈inlets} Σ_k f_{j,i,k} ≤ ⌊|Ci|/2⌋.
	var capTerms []contracts.LinTerm
	for _, j := range s.Inlets[ci] {
		for k := 0; k <= p; k++ {
			capTerms = append(capTerms, contracts.LT(1, flowVar(j, ci, k)))
		}
	}
	if err := c.Assume(contracts.CT(fmt.Sprintf("cap_%d", ci), lp.LE, int64(comp.Capacity()), capTerms...)); err != nil {
		return nil, err
	}

	// Guarantees.
	for k := 0; k <= p; k++ {
		// Conservation: Σ_out f = Σ_in f + fin - fout (product commodities);
		// Σ_out f0 = Σ_in f0 - Σ fin + Σ fout (empty commodity, sign erratum
		// in §IV-D corrected).
		var terms []contracts.LinTerm
		for _, j := range s.Outlets[ci] {
			terms = append(terms, contracts.LT(1, flowVar(ci, j, k)))
		}
		for _, j := range s.Inlets[ci] {
			terms = append(terms, contracts.LT(-1, flowVar(j, ci, k)))
		}
		if k < p {
			if isRow {
				terms = append(terms, contracts.LT(-1, finVar(ci, k)))
			}
			if isQueue {
				terms = append(terms, contracts.LT(1, foutVar(ci, k)))
			}
		} else {
			for kk := 0; kk < p; kk++ {
				if isRow {
					terms = append(terms, contracts.LT(1, finVar(ci, kk)))
				}
				if isQueue {
					terms = append(terms, contracts.LT(-1, foutVar(ci, kk)))
				}
			}
		}
		if err := c.Guarantee(contracts.CT(fmt.Sprintf("cons_%d_%d", ci, k), lp.EQ, 0, terms...)); err != nil {
			return nil, err
		}
	}
	if isQueue {
		// fout_{i,k} ≤ Σ_in f_{j,i,k}.
		for k := 0; k < p; k++ {
			terms := []contracts.LinTerm{contracts.LT(1, foutVar(ci, k))}
			for _, j := range s.Inlets[ci] {
				terms = append(terms, contracts.LT(-1, flowVar(j, ci, k)))
			}
			if err := c.Guarantee(contracts.CT(fmt.Sprintf("foutcap_%d_%d", ci, k), lp.LE, 0, terms...)); err != nil {
				return nil, err
			}
		}
	}
	if isRow {
		// fin_{i,k} ≤ UNITS_AT(Ci, ρk)/qc (rational bound, per the paper).
		for k := 0; k < p; k++ {
			units := s.UnitsAt(ci, warehouse.ProductID(k))
			bound := big.NewRat(int64(units), int64(qc))
			con := contracts.Constraint{
				Name:  fmt.Sprintf("fincap_%d_%d", ci, k),
				Terms: []contracts.LinTerm{contracts.LT(1, finVar(ci, k))},
				Sense: lp.LE,
				RHS:   bound,
			}
			if err := c.Guarantee(con); err != nil {
				return nil, err
			}
		}
		// Σ_k fin ≤ Σ_in f_{j,i,0}: pickups need unburdened agents.
		var terms []contracts.LinTerm
		for k := 0; k < p; k++ {
			terms = append(terms, contracts.LT(1, finVar(ci, k)))
		}
		for _, j := range s.Inlets[ci] {
			terms = append(terms, contracts.LT(-1, flowVar(j, ci, empty)))
		}
		if err := c.Guarantee(contracts.CT(fmt.Sprintf("finempty_%d", ci), lp.LE, 0, terms...)); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// CompileWorkloadContract builds C̃w: no assumptions; guarantees that the
// per-period drop-off rate of every product k is at least w_k / qeff.
func CompileWorkloadContract(s *traffic.System, wl warehouse.Workload, qeff int) (*contracts.Contract, error) {
	c := contracts.New("workload")
	queues := s.StationQueues()
	for k, want := range wl.Units {
		if want == 0 {
			continue
		}
		var terms []contracts.LinTerm
		for _, q := range queues {
			name := foutVar(q, k)
			if err := c.DeclareVar(contracts.NatSpec(name)); err != nil {
				return nil, err
			}
			terms = append(terms, contracts.LT(1, name))
		}
		if len(terms) == 0 {
			return nil, fmt.Errorf("flow: demand for product %d but no station queues", k)
		}
		con := contracts.Constraint{
			Name:  fmt.Sprintf("demand_%d", k),
			Terms: terms,
			Sense: lp.GE,
			RHS:   big.NewRat(int64(want), int64(qeff)),
		}
		if err := c.Guarantee(con); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// CompileSystemContract composes every component contract into the traffic
// system contract C̃TS (Fig. 3, red). Discharge selects the full composition
// operator (slow, entailment per assumption) or the fast conjunctive
// approximation with the identical satisfying set.
func CompileSystemContract(s *traffic.System, qc int, discharge bool) (*contracts.Contract, error) {
	var cs []*contracts.Contract
	for _, comp := range s.Components {
		c, err := CompileComponentContract(s, comp.ID, qc)
		if err != nil {
			return nil, err
		}
		cs = append(cs, c)
	}
	if discharge {
		return contracts.ComposeAll(cs)
	}
	return contracts.ComposeAllFast(cs)
}

// contractNodeBudget bounds the branch-and-bound tree per synthesis
// attempt. The faithful strategy targets small and mid-size instances,
// which decide within a handful of nodes; instances in the integer-rate
// regime (DESIGN.md) can be rationally feasible yet integrally infeasible,
// and proving that by branching alone is exponential — the budget converts
// such doomed searches into a prompt, deterministic failure.
const contractNodeBudget = 250

// contractWorkBudget bounds total simplex work per synthesis attempt, in
// the solver's deterministic row-update units. Nodes alone do not bound
// latency on large tableaus (a warm reentry of a feasibility relaxation
// can wander arbitrarily, and pivot cost grows with fill-in), so the
// budget scales with the tableau footprint: the cold root solve costs on
// the order of 150× rows×cols at contract sizes, leaving a few root-solves
// worth of slack before the search is declared undecided. The constant
// floor keeps small instances effectively unbudgeted.
func contractWorkBudget(goal *contracts.Contract) int64 {
	rows := int64(len(goal.Assumptions) + len(goal.Guarantees))
	cols := int64(len(goal.Vars)) + 2*rows + 1
	return 10_000_000 + 500*rows*cols
}

// synthesisILPOptions resolves the branch-and-bound budgets for one
// contract synthesis attempt: caller overrides from Options when set, the
// package defaults otherwise, plus the context's cancellation channel.
func synthesisILPOptions(ctx context.Context, goal *contracts.Contract, opts Options) lp.ILPOptions {
	engine := lp.EngineFloat
	if opts.ExactILP {
		engine = lp.EngineExact
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = contractNodeBudget
	}
	maxWork := opts.MaxWork
	if maxWork == 0 {
		maxWork = contractWorkBudget(goal)
	}
	return lp.ILPOptions{
		Engine:         engine,
		MaxNodes:       maxNodes,
		MaxWork:        maxWork,
		Simplex:        opts.Simplex,
		AutoRows:       opts.AutoRows,
		RootCuts:       opts.RootCuts,
		Cancel:         cancelOf(ctx),
		SearchParallel: opts.SearchParallel,
	}
}

// cancelOf extracts a context's cancellation channel, tolerating nil.
func cancelOf(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// SynthesizeContract is the faithful §IV-D pipeline: compile C̃TS ⊗-composed
// from component contracts, conjoin with C̃w, and search for a satisfying
// integer assignment with the ILP solver (the Z3 substitute). The assignment
// is decoded into a Set and exactly re-checked. Cancelling ctx aborts the
// ILP search within one work-budget tick (the error wraps lp.ErrCanceled);
// an uncancelled solve is bit-identical to one with a background context.
//
// Complexity grows with |Es| × |ρ|; use SynthesizeSequential for the
// paper-scale instances (the ablation bench compares both).
func SynthesizeContract(ctx context.Context, s *traffic.System, wl warehouse.Workload, T int, opts Options) (*Set, error) {
	margin := opts.WarmupMargin
	if margin == 0 {
		margin = autoMargin(s, T)
	}
	tc, qc, qeff, err := periods(s, T, margin)
	if err != nil {
		return nil, err
	}
	cts, err := CompileSystemContract(s, qc, false)
	if err != nil {
		return nil, err
	}
	cw, err := CompileWorkloadContract(s, wl, qeff)
	if err != nil {
		return nil, err
	}
	goal, err := contracts.Conjoin(cts, cw)
	if err != nil {
		return nil, err
	}
	asn, err := goal.SatisfyOpts(synthesisILPOptions(ctx, goal, opts))
	if err != nil {
		return nil, err
	}
	if asn == nil {
		return nil, &InfeasibleError{Cert: CertMaybeFeasible, Horizon: T, Reason: "contract conjunction unsatisfiable"}
	}
	return decodeSet(s, wl, tc, qc, qeff, asn)
}

// decodeSet turns a satisfying assignment of the contract conjunction into
// a verified flow Set — the back half of SynthesizeContract, shared with
// the incremental ContractModel path.
func decodeSet(s *traffic.System, wl warehouse.Workload, tc, qc, qeff int, asn contracts.Assignment) (*Set, error) {
	set := newSet(s, tc, qc, qeff)
	decode := func(name string) int {
		if r, ok := asn[name]; ok {
			return lp.MustInt(r)
		}
		return 0
	}
	p := s.W.NumProducts
	for e, edge := range set.Edges {
		for k := 0; k <= p; k++ {
			set.F[e][k] = decode(flowVar(edge[0], edge[1], k))
		}
	}
	for _, comp := range s.Components {
		for k := 0; k < p; k++ {
			set.Fin[comp.ID][k] = decode(finVar(comp.ID, k))
			set.Fout[comp.ID][k] = decode(foutVar(comp.ID, k))
		}
	}
	assignQuotas(set, wl)
	if errs := set.Check(wl); len(errs) > 0 {
		return nil, fmt.Errorf("flow: contract synthesis produced an invalid set: %w", errs[0])
	}
	return set, nil
}

// VerifyContracts re-checks a synthesized Set against the compiled contract
// system by substituting its values into every assumption and guarantee.
func VerifyContracts(set *Set, wl warehouse.Workload) error {
	cts, err := CompileSystemContract(set.S, set.Qc, false)
	if err != nil {
		return err
	}
	cw, err := CompileWorkloadContract(set.S, wl, set.QEff)
	if err != nil {
		return err
	}
	goal, err := contracts.Conjoin(cts, cw)
	if err != nil {
		return err
	}
	p, index := goal.ToProblem()
	values := make([]*big.Rat, p.NumVars())
	for name, id := range index {
		values[id] = big.NewRat(int64(lookupVar(set, name)), 1)
	}
	return p.Check(values)
}

// lookupVar resolves a contract variable name to its value in the Set.
func lookupVar(set *Set, name string) int {
	var i, j, k int
	if n, _ := fmt.Sscanf(name, "f_%d_%d_%d", &i, &j, &k); n == 3 {
		e := set.EdgeIndex(traffic.ComponentID(i), traffic.ComponentID(j))
		if e < 0 {
			return 0
		}
		return set.F[e][k]
	}
	if n, _ := fmt.Sscanf(name, "fin_%d_%d", &i, &k); n == 2 {
		return set.Fin[i][k]
	}
	if n, _ := fmt.Sscanf(name, "fout_%d_%d", &i, &k); n == 2 {
		return set.Fout[i][k]
	}
	return 0
}

// assignQuotas distributes the workload demand over shelving rows with
// positive pick rate, bounded by each row's stock.
func assignQuotas(set *Set, wl warehouse.Workload) {
	s := set.S
	for k, want := range wl.Units {
		remaining := want
		for _, ri := range s.ShelvingRows() {
			if remaining == 0 {
				break
			}
			if set.Fin[ri][k] == 0 {
				continue
			}
			give := s.UnitsAt(ri, warehouse.ProductID(k))
			if give > remaining {
				give = remaining
			}
			set.Quota[ri][k] = give
			remaining -= give
		}
		// If rated rows lack stock for the whole demand (possible when the
		// same row feeds several products), spill to any stocked row.
		for _, ri := range s.ShelvingRows() {
			if remaining == 0 {
				break
			}
			have := s.UnitsAt(ri, warehouse.ProductID(k)) - set.Quota[ri][k]
			if have <= 0 {
				continue
			}
			if have > remaining {
				have = remaining
			}
			set.Quota[ri][k] += have
			remaining -= have
		}
	}
}

// Options tunes synthesis.
type Options struct {
	// WarmupMargin reserves cycle periods for realization warm-up: flows are
	// sized to service the workload in qc - WarmupMargin periods. Zero means
	// an automatic margin of the longest plausible cycle (the number of
	// components) capped at qc/2.
	WarmupMargin int
	// ExactILP switches the contract path to the exact rational ILP engine.
	ExactILP bool
	// Simplex overrides the exact engines' simplex representation (dense
	// tableau vs LU-factorized revised; lp.SimplexAuto selects by instance
	// size). Answers are bit-identical either way. lp.SimplexHybrid selects
	// the float-first/exact-verify hybrid solve mode instead of a
	// representation; certified hybrid answers are bit-identical too.
	Simplex lp.SimplexEngine
	// RootCuts separates Gomory fractional and knapsack-cover cutting
	// planes at the branch-and-bound root of each exact contract synthesis
	// (lp.ILPOptions.RootCuts). The optimal objective is exactly preserved;
	// with alternate integer optima the returned assignment may differ from
	// the cut-free search.
	RootCuts bool
	// MaxNodes overrides the per-attempt branch-and-bound node budget of
	// the contract path; 0 selects the package default
	// (contractNodeBudget). Exhaustion wraps lp.ErrBudgetExhausted.
	MaxNodes int
	// MaxWork overrides the per-attempt deterministic simplex work budget
	// (row-update units); 0 selects the tableau-footprint-scaled default
	// (contractWorkBudget).
	MaxWork int64
	// SearchParallel distributes open branch-and-bound subtrees of each
	// contract solve across up to this many workers
	// (lp.ILPOptions.SearchParallel; 0 or 1 = sequential). Answers, budget
	// verdicts, and error strings are bit-identical at every width.
	SearchParallel int
	// AutoRows overrides the lp.SimplexAuto dense/revised size crossover
	// for every contract-path solve (lp.SolveOptions.AutoRows /
	// lp.ILPOptions.AutoRows); 0 keeps the calibrated default. Answers are
	// unchanged at any setting.
	AutoRows int
}

// autoMargin picks a warm-up margin when the caller did not: enough periods
// for an agent to finish one revolution of a cycle touching every component
// once, capped at half the budget.
func autoMargin(s *traffic.System, T int) int {
	tc := s.CycleTime()
	if tc == 0 {
		return 0
	}
	qc := T / tc
	m := s.NumComponents()
	if m > qc/2 {
		m = qc / 2
	}
	return m
}
