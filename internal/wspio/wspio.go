// Package wspio serializes WSP instances — warehouse, traffic system, and
// workload — as JSON files, so instances can be exported, edited, shared,
// and re-solved outside the built-in generators.
package wspio

import (
	"encoding/json"
	"fmt"

	"repro/internal/grid"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// StockEntry places Units of Product at the shelf-access cell (X, Y).
type StockEntry struct {
	Product int `json:"product"`
	X       int `json:"x"`
	Y       int `json:"y"`
	Units   int `json:"units"`
}

// Instance is the on-disk form of a WSP instance. The Map field uses the
// grid package's ASCII language ('.' floor, '#' obstacle, '@' shelf body,
// 'T' station); shelf-access cells and their stock are listed explicitly;
// traffic-system components are cell-coordinate paths in entry→exit order.
type Instance struct {
	Name        string       `json:"name,omitempty"`
	Map         string       `json:"map"`
	NumProducts int          `json:"num_products"`
	Stock       []StockEntry `json:"stock"`
	Components  [][][2]int   `json:"components"`
	Workload    []int        `json:"workload,omitempty"`
	T           int          `json:"t,omitempty"`
}

// Encode captures a live warehouse + traffic system (+ optional workload)
// into an Instance.
func Encode(s *traffic.System, wl *warehouse.Workload, T int, name string) (*Instance, error) {
	w := s.W
	g := w.Graph
	// Rebuild shelf/station coordinate sets for the ASCII map. Shelf bodies
	// are the obstacle cells; we cannot distinguish them from plain
	// obstacles in the model, so obstacles render as '#' and stock entries
	// carry the access cells — the round trip preserves semantics exactly.
	var stations []grid.Coord
	for _, v := range w.Stations {
		stations = append(stations, g.Coord(v))
	}
	inst := &Instance{
		Name:        name,
		Map:         grid.Render(g, nil, stations),
		NumProducts: w.NumProducts,
		T:           T,
	}
	for k := 0; k < w.NumProducts; k++ {
		row := w.Stock[k]
		for l, units := range row {
			if units == 0 {
				continue
			}
			c := g.Coord(w.ShelfAccess[l])
			inst.Stock = append(inst.Stock, StockEntry{Product: k, X: c.X, Y: c.Y, Units: units})
		}
	}
	for _, comp := range s.Components {
		var cells [][2]int
		for _, v := range comp.Cells {
			c := g.Coord(v)
			cells = append(cells, [2]int{c.X, c.Y})
		}
		inst.Components = append(inst.Components, cells)
	}
	if wl != nil {
		inst.Workload = append([]int(nil), wl.Units...)
	}
	return inst, nil
}

// Decode materializes an Instance into a validated warehouse and traffic
// system (and workload, when present).
func Decode(inst *Instance) (*traffic.System, *warehouse.Workload, error) {
	g, _, stationCoords, err := grid.Parse(inst.Map)
	if err != nil {
		return nil, nil, fmt.Errorf("wspio: map: %w", err)
	}
	var stations []grid.VertexID
	for _, c := range stationCoords {
		stations = append(stations, g.At(c))
	}
	// Collect access cells in first-appearance order.
	accessIdx := make(map[grid.VertexID]int)
	var access []grid.VertexID
	for _, e := range inst.Stock {
		v := g.At(grid.Coord{X: e.X, Y: e.Y})
		if v == grid.None {
			return nil, nil, fmt.Errorf("wspio: stock entry at (%d,%d) is not a passable cell", e.X, e.Y)
		}
		if _, ok := accessIdx[v]; !ok {
			accessIdx[v] = len(access)
			access = append(access, v)
		}
	}
	stock := make([][]int, inst.NumProducts)
	for k := range stock {
		stock[k] = make([]int, len(access))
	}
	for _, e := range inst.Stock {
		if e.Product < 0 || e.Product >= inst.NumProducts {
			return nil, nil, fmt.Errorf("wspio: stock entry references product %d of %d", e.Product, inst.NumProducts)
		}
		v := g.At(grid.Coord{X: e.X, Y: e.Y})
		stock[e.Product][accessIdx[v]] += e.Units
	}
	w, err := warehouse.New(g, access, stations, inst.NumProducts, stock)
	if err != nil {
		return nil, nil, fmt.Errorf("wspio: warehouse: %w", err)
	}
	paths := make([][]grid.VertexID, len(inst.Components))
	for i, cells := range inst.Components {
		for _, xy := range cells {
			v := g.At(grid.Coord{X: xy[0], Y: xy[1]})
			if v == grid.None {
				return nil, nil, fmt.Errorf("wspio: component %d cell (%d,%d) is not passable", i, xy[0], xy[1])
			}
			paths[i] = append(paths[i], v)
		}
	}
	s, err := traffic.Build(w, paths)
	if err != nil {
		return nil, nil, fmt.Errorf("wspio: traffic system: %w", err)
	}
	var wl *warehouse.Workload
	if inst.Workload != nil {
		w2, err := warehouse.NewWorkload(w, inst.Workload)
		if err != nil {
			return nil, nil, fmt.Errorf("wspio: workload: %w", err)
		}
		wl = &w2
	}
	return s, wl, nil
}

// Marshal renders an Instance as indented JSON.
func Marshal(inst *Instance) ([]byte, error) {
	return json.MarshalIndent(inst, "", "  ")
}

// Unmarshal parses JSON produced by Marshal.
func Unmarshal(data []byte) (*Instance, error) {
	var inst Instance
	if err := json.Unmarshal(data, &inst); err != nil {
		return nil, fmt.Errorf("wspio: %w", err)
	}
	return &inst, nil
}
