// Fulfillment-center walkthrough: solve the paper's Fulfillment 1 instance
// (550 units over 55 products, T = 3600) with all three synthesis
// strategies where feasible, and print a delivery-throughput timeline.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/maps"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/workload"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func main() {
	m, err := maps.Fulfillment1()
	if err != nil {
		log.Fatal(err)
	}
	st := traffic.Summarize(m.S)
	fmt.Printf("Fulfillment 1: %d cells, %d shelves, %d stations, %d products\n",
		m.W.Graph.NumVertices(), len(m.Shelves), len(m.W.Stations), m.W.NumProducts)
	fmt.Printf("traffic system: %d components, %d arcs, cycle time %d\n\n",
		st.Components, st.Edges, st.CycleTime)

	const T = 3600
	wl, err := workload.Uniform(m.W, 550)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Solve(m.S, wl, T, core.Options{Strategy: core.RoutePacking})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route-packing: %d agents, %d cycles, serviced at t=%d (synthesis %v)\n",
		res.Stats.Agents, len(res.CycleSet.Cycles), res.Sim.ServicedAt, res.Timing.Synthesis)

	// Delivery throughput per 300-step window (the data behind a
	// throughput-over-time figure).
	fmt.Println("\nthroughput (units per 300 steps):")
	for i, n := range sim.Throughput(res.Sim, T, 300) {
		fmt.Printf("  t=%4d-%4d: %s (%d)\n", i*300, (i+1)*300-1, bar(n), n)
	}

	// A skewed (Zipf-like) workload: the head products dominate, as in
	// e-commerce demand.
	skew, err := workload.Skewed(m.W, 550, rng())
	if err != nil {
		log.Fatal(err)
	}
	res2, err := core.Solve(m.S, skew, T, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nskewed workload: %d agents, %d cycles, serviced at t=%d\n",
		res2.Stats.Agents, len(res2.CycleSet.Cycles), res2.Sim.ServicedAt)
}

func bar(n int) string {
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
