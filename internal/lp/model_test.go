package lp

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// sameSolution compares two solutions field by field with exact arithmetic.
func sameSolution(a, b *Solution) error {
	if a.Status != b.Status {
		return fmt.Errorf("status %v vs %v", a.Status, b.Status)
	}
	if (a.Objective == nil) != (b.Objective == nil) {
		return fmt.Errorf("objective presence differs")
	}
	if a.Objective != nil && a.Objective.Cmp(b.Objective) != 0 {
		return fmt.Errorf("objective %s vs %s", a.Objective, b.Objective)
	}
	if len(a.Values) != len(b.Values) {
		return fmt.Errorf("value count %d vs %d", len(a.Values), len(b.Values))
	}
	for i := range a.Values {
		if a.Values[i].Cmp(b.Values[i]) != 0 {
			return fmt.Errorf("value %d: %s vs %s", i, a.Values[i], b.Values[i])
		}
	}
	return nil
}

// randomEditProblem builds a small random program in the shape the model
// layer serves: bounded integer variables, mixed-sense rows, sometimes an
// objective.
func randomEditProblem(rng *rand.Rand) *Problem {
	p := &Problem{}
	nVars := 2 + rng.Intn(3)
	for i := 0; i < nVars; i++ {
		p.AddIntVar(fmt.Sprintf("x%d", i), rat(0, 1), rat(int64(3+rng.Intn(4)), 1))
	}
	nCons := 1 + rng.Intn(4)
	for c := 0; c < nCons; c++ {
		var terms []Term
		for i := 0; i < nVars; i++ {
			coef := int64(rng.Intn(7) - 3)
			if coef != 0 {
				terms = append(terms, T(VarID(i), coef))
			}
		}
		if len(terms) == 0 {
			terms = append(terms, T(0, 1))
		}
		sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
		p.AddConstraint(fmt.Sprintf("c%d", c), terms, sense, rat(int64(rng.Intn(13)-4), 1))
	}
	if rng.Intn(2) == 0 {
		var obj []Term
		for i := 0; i < nVars; i++ {
			if coef := int64(rng.Intn(9) - 4); coef != 0 {
				obj = append(obj, T(VarID(i), coef))
			}
		}
		p.SetObjective(obj, rng.Intn(2) == 0)
	}
	return p
}

// mutate applies one random edit through the model's setters.
func mutate(mo *Model, rng *rand.Rand) {
	p := mo.Problem()
	switch rng.Intn(4) {
	case 0: // retarget a right-hand side
		mo.SetRHS(rng.Intn(len(p.Constraints)), rat(int64(rng.Intn(15)-5), 1))
	case 1: // move a variable's bounds, occasionally to a conflicting pair
		v := VarID(rng.Intn(len(p.Vars)))
		lo := int64(rng.Intn(5) - 1)
		hi := lo + int64(rng.Intn(6)-1) // sometimes hi < lo
		var loR, hiR *big.Rat
		if rng.Intn(5) > 0 {
			loR = rat(lo, 1)
		}
		if rng.Intn(5) > 0 {
			hiR = rat(hi, 1)
		}
		mo.SetBound(v, loR, hiR)
	case 2: // replace the objective
		var obj []Term
		for i := range p.Vars {
			if coef := int64(rng.Intn(9) - 4); coef != 0 {
				obj = append(obj, T(VarID(i), coef))
			}
		}
		mo.SetObjective(obj, rng.Intn(2) == 0)
	case 3: // drop the objective (pure feasibility)
		mo.SetObjective(nil, false)
	}
}

// Property: across randomized bound/RHS/objective edit sequences, the
// model's incremental Resolve and ResolveILP stay bit-identical to handing
// the edited Problem to a from-scratch SolveLP / SolveILP — statuses,
// values, and objective all equal, under both ILP engines.
func TestModelResolveBitIdenticalToScratch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mo := NewModel(randomEditProblem(rng))
		for step := 0; step < 8; step++ {
			if step > 0 {
				mutate(mo, rng)
			}
			switch rng.Intn(3) {
			case 0:
				got, err := mo.Resolve()
				if err != nil {
					t.Logf("seed %d step %d: resolve: %v", seed, step, err)
					return false
				}
				want, err := SolveLP(mo.Problem())
				if err != nil {
					t.Logf("seed %d step %d: scratch: %v", seed, step, err)
					return false
				}
				if err := sameSolution(got, want); err != nil {
					t.Logf("seed %d step %d: LP diverged: %v", seed, step, err)
					return false
				}
			case 1, 2:
				engine := EngineExact
				if rng.Intn(2) == 0 {
					engine = EngineFloat
				}
				// Budget the search like every production caller does: edits
				// can produce unbounded integer-infeasible programs, where
				// pure branch and bound is exponential (DESIGN.md); the
				// deterministic work budget makes both sides stop at the
				// same StatusLimit instead of grinding.
				opts := ILPOptions{Engine: engine, MaxNodes: 5000, MaxWork: 2_000_000}
				got, err := mo.ResolveILP(opts)
				want, werr := SolveILP(mo.Problem(), opts)
				if err != nil || werr != nil {
					// An edit can strip the last bound of an integer
					// variable; both sides must then reject the unbounded
					// domain with the same typed error.
					if errors.Is(err, ErrUnboundedIntDomain) && errors.Is(werr, ErrUnboundedIntDomain) {
						continue
					}
					t.Logf("seed %d step %d: resolveILP: %v / scratch ILP: %v", seed, step, err, werr)
					return false
				}
				if err := sameSolution(got, want); err != nil {
					t.Logf("seed %d step %d: ILP diverged: %v", seed, step, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// The warm paths must survive promotion: an RHS edit that overflows int64
// mid-model drops the rat64 arena and re-solves over big.Rat, still
// matching the from-scratch answer.
func TestModelPromotionKeepsParity(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", rat(0, 1), nil)
	y := p.AddVar("y", rat(0, 1), nil)
	p.AddConstraint("r0", []Term{T(x, 1), T(y, 1)}, LE, rat(10, 1))
	p.AddConstraint("r1", []Term{T(x, 1), T(y, -1)}, GE, rat(0, 1))
	p.SetObjective([]Term{T(x, 1), T(y, 1)}, true)
	mo := NewModel(p)
	if _, err := mo.Resolve(); err != nil {
		t.Fatal(err)
	}
	huge := new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 80), big.NewInt(3))
	mo.SetRHS(0, huge)
	got, err := mo.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveLP(mo.Problem())
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSolution(got, want); err != nil {
		t.Fatalf("post-promotion divergence: %v", err)
	}
}

// An objective-only edit takes the primal reentry path (phase 2 from the
// standing basis); the answer must still match a from-scratch solve.
func TestModelObjectiveEditPrimalReentry(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", rat(0, 1), rat(4, 1))
	y := p.AddVar("y", rat(0, 1), rat(4, 1))
	p.AddConstraint("cap", []Term{T(x, 2), T(y, 3)}, LE, rat(12, 1))
	p.SetObjective([]Term{T(x, 1), T(y, 1)}, true)
	mo := NewModel(p)
	if _, err := mo.Resolve(); err != nil {
		t.Fatal(err)
	}
	for _, obj := range [][]Term{
		{T(x, 5), T(y, 1)},
		{T(x, 1), T(y, 7)},
		{T(x, -1), T(y, -1)},
	} {
		mo.SetObjective(obj, true)
		got, err := mo.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		want, err := SolveLP(mo.Problem())
		if err != nil {
			t.Fatal(err)
		}
		if err := sameSolution(got, want); err != nil {
			t.Fatalf("objective edit diverged: %v", err)
		}
	}
}

// Structure growth behind the model's back (new variable + constraint) is
// detected and handled by a rebuild rather than a wrong answer.
func TestModelStructureGrowthRebuilds(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", rat(0, 1), rat(5, 1))
	p.AddConstraint("r", []Term{T(x, 1)}, GE, rat(1, 1))
	p.SetObjective([]Term{T(x, 1)}, false)
	mo := NewModel(p)
	if _, err := mo.Resolve(); err != nil {
		t.Fatal(err)
	}
	y := p.AddVar("y", rat(0, 1), rat(5, 1))
	p.AddConstraint("r2", []Term{T(x, 1), T(y, 1)}, GE, rat(4, 1))
	got, err := mo.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSolution(got, want); err != nil {
		t.Fatalf("post-growth divergence: %v", err)
	}
}
