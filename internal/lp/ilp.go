package lp

import (
	"fmt"
	"math/big"
)

// Engine selects the arithmetic the branch-and-bound relaxations use.
type Engine int

// Available engines.
const (
	// EngineExact uses the exact rational simplex for every relaxation:
	// int64 numerator/denominator arithmetic promoted transparently to
	// big.Rat on overflow. Complete and exact.
	EngineExact Engine = iota
	// EngineFloat uses the float64 simplex for relaxations and verifies the
	// final incumbent exactly with Problem.Check. Fast; an (unlikely)
	// spurious float infeasibility can prune a feasible subtree, so a
	// StatusInfeasible answer from this engine is "almost certainly
	// infeasible" rather than a proof.
	EngineFloat
)

// ILPOptions tunes SolveILP.
type ILPOptions struct {
	Engine Engine
	// MaxNodes bounds the branch-and-bound search tree; 0 means the default
	// (200000). When exhausted the solver returns StatusLimit (or the best
	// incumbent found so far, if any).
	MaxNodes int
	// MaxWork bounds the total tableau work across the whole branch-and-
	// bound run, measured in row-update operations (rows touched by an
	// elimination × row length); 0 means unlimited. Neither nodes nor
	// pivots bound latency on large tableaus: a warm reentry of a
	// feasibility relaxation can wander for thousands of pivots (zero
	// objective ⇒ the dual simplex has no monotone progress measure), and
	// a pivot's cost itself grows with fill-in. Work units are
	// deterministic and machine-independent; exhaustion returns
	// StatusLimit, like MaxNodes. The revised engine charges the same
	// units per pivot as the dense elimination would, so budgeted searches
	// stay bit-identical across representations.
	MaxWork int64
	// Simplex overrides the exact engines' representation: dense tableau
	// or LU-factorized revised simplex (SimplexAuto selects by instance
	// size). Answers are bit-identical either way. The float engine
	// ignores it and always runs dense.
	Simplex SimplexEngine
	// Cancel, when non-nil, aborts the search as soon as the channel
	// fires (normally a context's Done channel). The check piggybacks on
	// the MaxWork accounting tick — once per pivot — so the pivot hot
	// path stays unbranched between ticks, a cancelled search returns
	// StatusCanceled within one tick, and an uncancelled search performs
	// exactly the arithmetic it would with no channel installed.
	Cancel <-chan struct{}
	// RootCuts separates Gomory fractional and knapsack-cover cutting
	// planes at the branch-and-bound root (exact engines only; the float
	// engine ignores it) and appends them as extra constraint rows before
	// the search. Cuts never exclude an integer-feasible point, so the
	// optimal value is unchanged; with alternate integer optima the search
	// may surface a different one than the cut-free tree. See cuts.go.
	RootCuts bool
}

// arena is the engine surface branch-and-bound and the Model layer drive,
// implemented by the dense tableau and the revised engine. Every method
// pair is decision-identical between the two, which is what keeps an
// arena swap invisible in the returned Solutions.
type arena[T any] interface {
	prob() *Problem
	startSearch(workBudget int64)
	setWorkBudget(int64)
	setCancel(<-chan struct{})
	canceled() bool
	solveNode(lo, hi []*big.Rat) Status
	resolveModel(lo, hi []*big.Rat) Status
	value(j int) T
	extractInto(dst []*big.Rat)
	firstFractionalInt() int
	objectiveValue() T
}

// SolveILP solves the mixed-integer program p by branch and bound over the
// simplex relaxation. For pure feasibility problems (no objective) it stops
// at the first integral solution. Every returned solution is exactly
// verified against p with rational arithmetic.
//
// The search keeps ONE tableau arena for the whole tree: a child node
// differs from its parent by a single bound, so each relaxation warm-starts
// from the previous node's basis with a few dual-simplex pivots (falling
// back to a cold solve only when the basis cannot be retargeted), and node
// bounds live in a parent-linked diff chain instead of per-node slices.
func SolveILP(p *Problem, opts ILPOptions) (*Solution, error) {
	if opts.Engine == EngineFloat {
		// Float relaxations: revised partial-pricing engine above the size
		// crossover, dense tableau below — same auto rule as the exact
		// engines (candidates are exactly verified either way).
		return bbSolveTableau(p, floatArena(p, opts.Simplex), floatArith{eps: defaultEps}, opts)
	}
	if opts.RootCuts {
		return solveILPRootCuts(p, opts)
	}
	if opts.Simplex == SimplexHybrid {
		return solveILPHybrid(p, opts)
	}
	rev := pickSimplex(p, opts.Simplex) == SimplexRevised
	var sol *Solution
	var err error
	if promote(func() { sol, err = bbSolve[rat64, rat64Arith](p, rat64Arith{}, opts, rev) }) {
		return sol, err
	}
	return bbSolve[*big.Rat, ratArith](p, ratArith{}, opts, rev)
}

func bbSolve[T any, A arith[T]](p *Problem, ar A, opts ILPOptions, revisedEngine bool) (*Solution, error) {
	var tb arena[T]
	if revisedEngine {
		tb = newRevised[T, A](p, ar)
	} else {
		tb = newTableau[T, A](p, ar)
	}
	return bbSolveTableau(p, tb, ar, opts)
}

// bbSolveTableau is the branch-and-bound search over a caller-provided
// arena (dense or revised). Model.ResolveILP passes a retained arena here;
// resetting the warm state and work counter first makes the search replay
// exactly the pivot sequence a fresh arena would, so incremental re-solves
// stay bit-identical to from-scratch ones while skipping the arena
// (re)build.
func bbSolveTableau[T any, A arith[T]](p *Problem, tb arena[T], ar A, opts ILPOptions) (*Solution, error) {
	return bbSolveHooked(p, tb, ar, opts, bbHooks{})
}

// bbHooks customizes bbSolveHooked for the hybrid search (hybrid.go): an
// alternate root reset that keeps an adopted warm basis, and a per-node
// certificate demanded of every consumed relaxation optimum. The zero value
// is the plain search.
type bbHooks struct {
	start   func(workBudget int64) // nil: tb.startSearch (cold root)
	certify func() bool            // nil: no certification
}

func bbSolveHooked[T any, A arith[T]](p *Problem, tb arena[T], ar A, opts ILPOptions, hooks bbHooks) (*Solution, error) {
	tb.setCancel(opts.Cancel)
	if hooks.start != nil {
		hooks.start(opts.MaxWork) // hybrid root: adopted warm basis kept
	} else {
		tb.startSearch(opts.MaxWork) // cold root, as from a fresh arena
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200000
	}
	nv := len(p.Vars)
	// Reused per-node scratch: effective bounds, chain replay stack, and the
	// relaxation values (big.Rat storage recycled across nodes).
	loEff := make([]*big.Rat, nv)
	hiEff := make([]*big.Rat, nv)
	var chainScratch []*boundDiff
	relaxVals := make([]*big.Rat, nv)
	for i := range relaxVals {
		relaxVals[i] = new(big.Rat)
	}
	objTmp := new(big.Rat)
	mulTmp := new(big.Rat)

	// DFS stack of bound-diff nodes; the nil entry is the root (declared
	// bounds only).
	stack := make([]*boundDiff, 1, 64)
	var best *Solution
	var bestObj *big.Rat
	nodes := 0
	hitLimit := false

	better := func(obj *big.Rat) bool {
		if bestObj == nil {
			return true
		}
		if p.Maximize {
			return obj.Cmp(bestObj) > 0
		}
		return obj.Cmp(bestObj) < 0
	}

	for len(stack) > 0 {
		if nodes >= maxNodes {
			hitLimit = true
			break
		}
		nodes++
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		chainScratch = nd.materialize(p, loEff, hiEff, chainScratch)
		switch tb.solveNode(loEff, hiEff) {
		case StatusInfeasible:
			continue
		case StatusUnbounded:
			// An unbounded relaxation at the root of a minimization with no
			// integrality cuts to help: report unbounded.
			return &Solution{Status: StatusUnbounded}, nil
		case StatusLimit:
			// Pivot budget exhausted mid-relaxation: stop the search and
			// fall through to the best incumbent, as with MaxNodes.
			hitLimit = true
		}
		if hitLimit {
			break
		}
		// Bound: prune if the relaxation cannot beat the incumbent. The
		// objective is evaluated in the tableau's own field — per-node work
		// stays allocation-free until a candidate or branch value is needed.
		if best != nil && len(p.Objective) > 0 {
			ar.setRat(objTmp, tb.objectiveValue())
			if p.Maximize {
				objTmp.Neg(objTmp) // cost is the minimization form
			}
			if !betterOrEqual(p, objTmp, bestObj) {
				continue
			}
		}
		// Hybrid certification: from here on the node's VALUES matter (the
		// branching variable, the candidate extraction), not just its
		// objective, so a warm-path search must prove the relaxation optimum
		// unique — the exact-only search would then have produced the very
		// same values. An uncertifiable node aborts the whole hybrid tree.
		if hooks.certify != nil && !hooks.certify() {
			return nil, errHybridBail
		}
		// Find a fractional integer variable to branch on.
		branch := tb.firstFractionalInt()
		if branch < 0 {
			// Integral (by the relaxation's lights): round and verify exactly.
			tb.extractInto(relaxVals)
			vals := roundIntegers(p, relaxVals)
			if err := p.Check(vals); err != nil {
				// Float noise produced a bogus candidate; branch on the
				// variable with the largest rounding error to make progress.
				branch = worstRounded(p, relaxVals)
				if branch < 0 {
					continue // nothing to branch on; abandon this node
				}
			} else {
				cand := &Solution{Status: StatusOptimal, Values: vals}
				if len(p.Objective) > 0 {
					cand.Objective = evalObjective(p, vals)
					if better(cand.Objective) {
						best, bestObj = cand, cand.Objective
					}
					continue
				}
				return cand, nil // feasibility problem: first solution wins
			}
		}
		// Branch on floor/ceil of the fractional value: each child is one
		// bound diff off this node. Explore the floor side first (LIFO:
		// push ceil first).
		ar.setRat(mulTmp, tb.value(branch))
		fl := ratFloor(mulTmp)
		ceil := new(big.Rat).Add(fl, big.NewRat(1, 1))
		stack = append(stack, nd.push(branch, false, ceil), nd.push(branch, true, fl))
	}

	if tb.canceled() {
		// Cancellation trumps any incumbent: the caller walked away from
		// the answer, so reporting a half-searched best would be
		// indistinguishable from a completed solve.
		return &Solution{Status: StatusCanceled}, nil
	}
	if best != nil {
		return best, nil
	}
	if hitLimit {
		return &Solution{Status: StatusLimit}, nil
	}
	return &Solution{Status: StatusInfeasible}, nil
}

func betterOrEqual(p *Problem, obj, best *big.Rat) bool {
	if p.Maximize {
		return obj.Cmp(best) > 0
	}
	return obj.Cmp(best) < 0
}

func evalObjective(p *Problem, vals []*big.Rat) *big.Rat {
	obj := new(big.Rat)
	tmp := new(big.Rat)
	for _, t := range p.Objective {
		obj.Add(obj, tmp.Mul(t.Coef, vals[t.Var]))
	}
	return obj
}

// roundIntegers snaps integer variables to the nearest integer (they are
// integral or within float tolerance of it) and leaves continuous values.
func roundIntegers(p *Problem, vals []*big.Rat) []*big.Rat {
	out := make([]*big.Rat, len(vals))
	for i, v := range vals {
		if p.Vars[i].Integer && !v.IsInt() {
			out[i] = ratRound(v)
		} else {
			out[i] = new(big.Rat).Set(v)
		}
	}
	return out
}

// worstRounded returns the integer variable farthest from integrality, or -1
// if all integer variables are integral.
func worstRounded(p *Problem, vals []*big.Rat) int {
	worst, worstDist := -1, new(big.Rat)
	for i, v := range vals {
		if !p.Vars[i].Integer || v.IsInt() {
			continue
		}
		d := new(big.Rat).Sub(v, ratRound(v))
		d.Abs(d)
		if worst < 0 || d.Cmp(worstDist) > 0 {
			worst, worstDist = i, d
		}
	}
	return worst
}

// ratFloor returns ⌊r⌋ as a rational.
func ratFloor(r *big.Rat) *big.Rat {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	// big.Int.Quo truncates toward zero; adjust negatives with remainders.
	if r.Sign() < 0 && !r.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	return new(big.Rat).SetInt(q)
}

// ratRound returns the nearest integer to r (half away from zero).
func ratRound(r *big.Rat) *big.Rat {
	fl := ratFloor(r)
	frac := new(big.Rat).Sub(r, fl)
	if frac.Cmp(big.NewRat(1, 2)) >= 0 {
		return fl.Add(fl, big.NewRat(1, 1))
	}
	return fl
}

// MustInt converts a rational known to be integral into an int.
func MustInt(r *big.Rat) int {
	if !r.IsInt() {
		panic(fmt.Sprintf("lp: %s is not integral", r))
	}
	return int(r.Num().Int64())
}
