package mapf

import (
	"errors"
	"testing"

	"repro/internal/grid"
)

func open5x5(t *testing.T) *grid.Grid {
	t.Helper()
	g, _, _, err := grid.Parse(".....\n.....\n.....\n.....\n.....")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func at(g *grid.Grid, x, y int) grid.VertexID { return g.At(grid.Coord{X: x, Y: y}) }

func TestPathHelpers(t *testing.T) {
	p := Path{3, 4, 4, 5}
	if p.Vertex(0) != 3 || p.Vertex(10) != 5 {
		t.Error("Vertex extension wrong")
	}
	if p.Cost() != 3 {
		t.Errorf("Cost = %d, want 3", p.Cost())
	}
	var empty Path
	if empty.Vertex(0) != grid.None {
		t.Error("empty path vertex")
	}
	// Waiting at the end does not count toward cost.
	p2 := Path{3, 4, 4, 4}
	if p2.Cost() != 1 {
		t.Errorf("Cost = %d, want 1", p2.Cost())
	}
}

func TestPrioritizedTwoAgentsCrossing(t *testing.T) {
	g := open5x5(t)
	starts := []grid.VertexID{at(g, 0, 2), at(g, 4, 2)}
	goals := [][]grid.VertexID{{at(g, 4, 2)}, {at(g, 0, 2)}}
	sol, err := Prioritized(g, starts, goals, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(g, 20); err != nil {
		t.Fatal(err)
	}
	if sol.Paths[0].Vertex(100) != goals[0][0] || sol.Paths[1].Vertex(100) != goals[1][0] {
		t.Error("agents did not reach goals")
	}
	if sol.Expansions == 0 {
		t.Error("no expansions recorded")
	}
}

func TestPrioritizedGoalSequence(t *testing.T) {
	g := open5x5(t)
	starts := []grid.VertexID{at(g, 0, 0)}
	goals := [][]grid.VertexID{{at(g, 4, 0), at(g, 4, 4), at(g, 0, 4)}}
	sol, err := Prioritized(g, starts, goals, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	p := sol.Paths[0]
	// Must visit all three goals in order.
	idx := 0
	for _, v := range p {
		if idx < len(goals[0]) && v == goals[0][idx] {
			idx++
		}
	}
	if idx != 3 {
		t.Errorf("visited %d of 3 goals in order", idx)
	}
	// Optimal tour: 4 + 4 + 4 = 12 steps.
	if p.Cost() != 12 {
		t.Errorf("cost = %d, want 12", p.Cost())
	}
}

func TestCBSOptimalSwap(t *testing.T) {
	// Two agents must swap ends of a corridor with a single passing bay.
	g, _, _, err := grid.Parse(".....\n..#..")
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	// Use a 2-row map: bottom row has a hole at x=2, so the top row is the
	// corridor and the bottom cells are bays.
	starts := []grid.VertexID{g.At(grid.Coord{X: 0, Y: 1}), g.At(grid.Coord{X: 4, Y: 1})}
	goals := [][]grid.VertexID{{g.At(grid.Coord{X: 4, Y: 1})}, {g.At(grid.Coord{X: 0, Y: 1})}}
	sol, err := CBS(g, starts, goals, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(g, 30); err != nil {
		t.Fatal(err)
	}
	if sol.Paths[0].Vertex(100) != goals[0][0] || sol.Paths[1].Vertex(100) != goals[1][0] {
		t.Error("agents did not reach goals")
	}
	if sol.HighLevelNodes == 0 {
		t.Error("CBS did not expand any high-level nodes")
	}
}

func TestCBSHeadOnRequiresDetour(t *testing.T) {
	g := open5x5(t)
	// Four agents pairwise crossing through the center.
	starts := []grid.VertexID{at(g, 0, 2), at(g, 4, 2), at(g, 2, 0), at(g, 2, 4)}
	goals := [][]grid.VertexID{
		{at(g, 4, 2)}, {at(g, 0, 2)}, {at(g, 2, 4)}, {at(g, 2, 0)},
	}
	sol, err := CBS(g, starts, goals, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(g, 40); err != nil {
		t.Fatal(err)
	}
}

func TestECBSBoundedSuboptimal(t *testing.T) {
	g := open5x5(t)
	starts := []grid.VertexID{at(g, 0, 2), at(g, 4, 2), at(g, 2, 0)}
	goals := [][]grid.VertexID{{at(g, 4, 2)}, {at(g, 0, 2)}, {at(g, 2, 4)}}
	opt, err := CBS(g, starts, goals, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := ECBS(g, starts, goals, 1.5, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(g, 40); err != nil {
		t.Fatal(err)
	}
	if float64(sub.SumOfCosts()) > 1.5*float64(opt.SumOfCosts()) {
		t.Errorf("ECBS cost %d exceeds 1.5 x optimal %d", sub.SumOfCosts(), opt.SumOfCosts())
	}
	if _, err := ECBS(g, starts, goals, 0.5, Limits{}); err == nil {
		t.Error("w < 1 accepted")
	}
}

func TestExpansionLimit(t *testing.T) {
	g := open5x5(t)
	starts := []grid.VertexID{at(g, 0, 0), at(g, 4, 4), at(g, 0, 4), at(g, 4, 0)}
	goals := [][]grid.VertexID{{at(g, 4, 4)}, {at(g, 0, 0)}, {at(g, 4, 0)}, {at(g, 0, 4)}}
	_, err := CBS(g, starts, goals, Limits{MaxExpansions: 5})
	if err == nil {
		t.Fatal("tiny budget did not abort")
	}
	// The budget verdict is the wrapped sentinel, classified by errors.Is —
	// never by equality (returns carry stage context via %w).
	if !errors.Is(err, ErrExpansionLimit) {
		t.Errorf("budget error %v does not classify as ErrExpansionLimit", err)
	}
	if err == ErrExpansionLimit { //nolint:errorlint // asserting wrapping happened
		t.Error("budget error returned bare; want it wrapped with stage context")
	}
}

func TestIteratedECBSCompletesTasks(t *testing.T) {
	g := open5x5(t)
	starts := []grid.VertexID{at(g, 0, 0), at(g, 4, 4)}
	goals := [][]grid.VertexID{
		{at(g, 4, 0), at(g, 0, 0)},
		{at(g, 0, 4), at(g, 4, 4)},
	}
	sol, err := IteratedECBS(g, starts, goals, IteratedOptions{Window: 5})
	if err != nil {
		t.Fatal(err)
	}
	horizon := 0
	for _, p := range sol.Paths {
		if len(p) > horizon {
			horizon = len(p)
		}
	}
	if err := sol.Validate(g, horizon); err != nil {
		t.Fatal(err)
	}
	// Each agent must have visited its goals in order.
	for i, gs := range goals {
		idx := 0
		for _, v := range sol.Paths[i] {
			if idx < len(gs) && v == gs[idx] {
				idx++
			}
		}
		if idx != len(gs) {
			t.Errorf("agent %d visited %d of %d goals", i, idx, len(gs))
		}
	}
}

func TestValidateCatchesCollision(t *testing.T) {
	g := open5x5(t)
	bad := &Solution{Paths: []Path{
		{at(g, 0, 0), at(g, 1, 0)},
		{at(g, 2, 0), at(g, 1, 0)},
	}}
	if err := bad.Validate(g, 2); err == nil {
		t.Error("vertex collision not caught")
	}
	swap := &Solution{Paths: []Path{
		{at(g, 0, 0), at(g, 1, 0)},
		{at(g, 1, 0), at(g, 0, 0)},
	}}
	if err := swap.Validate(g, 2); err == nil {
		t.Error("edge swap not caught")
	}
	tele := &Solution{Paths: []Path{{at(g, 0, 0), at(g, 3, 3)}}}
	if err := tele.Validate(g, 2); err == nil {
		t.Error("teleport not caught")
	}
}

func TestMismatchedInputs(t *testing.T) {
	g := open5x5(t)
	if _, err := Prioritized(g, []grid.VertexID{0}, nil, Limits{}); err == nil {
		t.Error("mismatch accepted by Prioritized")
	}
	if _, err := CBS(g, []grid.VertexID{0}, nil, Limits{}); err == nil {
		t.Error("mismatch accepted by CBS")
	}
	if _, err := IteratedECBS(g, []grid.VertexID{0}, nil, IteratedOptions{}); err == nil {
		t.Error("mismatch accepted by IteratedECBS")
	}
}
