package server

import (
	"runtime"
	"time"

	"repro/internal/server/faultinject"
	"repro/wsp"
)

// Config tunes the wspd service. The zero value is usable: every field has
// a production default filled in by withDefaults, so callers (and tests)
// set only what they mean to pin.
type Config struct {
	// Solver is the base solver configuration every request starts from;
	// per-request overrides and the degradation ladder derive from it.
	Solver wsp.Config

	// MaxInFlight bounds concurrently admitted solves (the in-flight
	// semaphore). Requests beyond it are rejected with 429 + Retry-After,
	// never queued. Default 2×GOMAXPROCS.
	MaxInFlight int
	// ClientRate refills each client's work-budget bucket, in the LP's
	// deterministic MaxWork units per second. Default 100e6.
	ClientRate int64
	// ClientBurst caps a client's bucket. Default 10×SolveCost.
	ClientBurst int64
	// SolveCost is the nominal admission charge for one solve whose
	// request does not pin a work budget. Default 20e6 (≈ the contract
	// path's default per-attempt budget on a small instance).
	SolveCost int64
	// MaxClients bounds the per-client bucket table; the least-recently
	// charged entry is evicted beyond it. Default 4096.
	MaxClients int

	// DefaultDeadline applies when a request carries no deadline_ms.
	// Default 30s.
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-requested deadlines. Default 2m.
	MaxDeadline time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight solves
	// before forcing the listener closed. Default 30s. (Enforced by the
	// caller of Drain — cmd/wspd — via the context it passes.)
	DrainTimeout time.Duration

	// DegradeWindow is the width of the sliding load window driving the
	// degradation ladder. Default 15s.
	DegradeWindow time.Duration
	// NoDegrade disables the degradation ladder entirely.
	NoDegrade bool

	// CacheSignatures bounds the warm-scratch cache: distinct
	// traffic.StructureSignature keys kept (LRU beyond it). Default 64.
	CacheSignatures int
	// CachePerSignature bounds warm scratches retained per signature.
	// Default MaxInFlight.
	CachePerSignature int

	// MaxBodyBytes bounds request bodies. Default 8 MiB.
	MaxBodyBytes int64
	// MaxBatch bounds instances per /v1/batch request. Default 64.
	MaxBatch int
	// MaxSweepPoints bounds topologies×levels per /v1/sweep request.
	// Default 256.
	MaxSweepPoints int

	// Fault, when non-nil, intercepts every solve (see faultinject).
	Fault faultinject.Hook
	// Now substitutes the clock for admission and load accounting.
	// Default time.Now.
	Now func() time.Time
	// Logf, when non-nil, receives one line per lifecycle event (start,
	// drain, forced close). The request path stays log-free.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.SolveCost <= 0 {
		c.SolveCost = 20_000_000
	}
	if c.ClientRate <= 0 {
		c.ClientRate = 100_000_000
	}
	if c.ClientBurst <= 0 {
		c.ClientBurst = 10 * c.SolveCost
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 4096
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.DegradeWindow <= 0 {
		c.DegradeWindow = 15 * time.Second
	}
	if c.CacheSignatures <= 0 {
		c.CacheSignatures = 64
	}
	if c.CachePerSignature <= 0 {
		c.CachePerSignature = c.MaxInFlight
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 256
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}
