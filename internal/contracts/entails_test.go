package contracts

import (
	"math/big"
	"testing"

	"repro/internal/lp"
)

// Term-free constraints are constant predicates (0 Sense RHS). They reach
// entails through Compose's assumption discharge; before the guard in
// entails they compiled into a pure feasibility objective whose Solution
// carries a nil Objective, and comparing it crashed. These tests pin the
// non-optimal path end to end.
func TestEntailsTermFreeGoal(t *testing.T) {
	c1 := New("producer")
	if err := c1.DeclareVar(NatSpec("x")); err != nil {
		t.Fatal(err)
	}
	if err := c1.Guarantee(CT("xcap", lp.LE, 5, LT(1, "x"))); err != nil {
		t.Fatal(err)
	}

	// A trivially true term-free assumption (0 ≤ 1) must be discharged.
	c2 := New("consumer")
	if err := c2.DeclareVar(NatSpec("x")); err != nil {
		t.Fatal(err)
	}
	if err := c2.Assume(Constraint{Name: "trivial", Sense: lp.LE, RHS: big.NewRat(1, 1)}); err != nil {
		t.Fatal(err)
	}
	comp, err := Compose(c1, c2)
	if err != nil {
		t.Fatalf("compose with term-free assumption: %v", err)
	}
	for _, a := range comp.Assumptions {
		if a.Name == "trivial" {
			t.Errorf("trivially true term-free assumption survived discharge")
		}
	}

	// A false term-free assumption (0 ≥ 1) is only vacuously entailed, so
	// it must be kept (the peer's guarantees are satisfiable).
	c3 := New("impossible")
	if err := c3.DeclareVar(NatSpec("x")); err != nil {
		t.Fatal(err)
	}
	if err := c3.Assume(Constraint{Name: "never", Sense: lp.GE, RHS: big.NewRat(1, 1)}); err != nil {
		t.Fatal(err)
	}
	comp2, err := Compose(c1, c3)
	if err != nil {
		t.Fatalf("compose with false term-free assumption: %v", err)
	}
	kept := false
	for _, a := range comp2.Assumptions {
		if a.Name == "never" {
			kept = true
		}
	}
	if !kept {
		t.Errorf("false term-free assumption was discharged against a satisfiable peer")
	}
}

// A false term-free goal against an infeasible premise is vacuously
// entailed — the branch that still consults the solver.
func TestEntailsTermFreeGoalVacuous(t *testing.T) {
	c1 := New("contradictory")
	if err := c1.DeclareVar(NatSpec("x")); err != nil {
		t.Fatal(err)
	}
	// x ≤ -1 over x ∈ N: infeasible guarantees.
	if err := c1.Guarantee(CT("neg", lp.LE, -1, LT(1, "x"))); err != nil {
		t.Fatal(err)
	}
	c2 := New("asker")
	if err := c2.DeclareVar(NatSpec("x")); err != nil {
		t.Fatal(err)
	}
	if err := c2.Assume(Constraint{Name: "never", Sense: lp.GE, RHS: big.NewRat(1, 1)}); err != nil {
		t.Fatal(err)
	}
	comp, err := Compose(c1, c2)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	for _, a := range comp.Assumptions {
		if a.Name == "never" {
			t.Errorf("assumption not discharged despite infeasible peer guarantees")
		}
	}
}
