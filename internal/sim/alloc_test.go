package sim

import (
	"testing"

	"repro/internal/agentplan"
	"repro/internal/cycles"
	"repro/internal/testmaps"
	"repro/internal/warehouse"
)

// TestRunAllocsIndependentOfHorizon guards the dense occupancy rewrite: the
// per-step validation and delivery loops must not allocate, so doubling the
// horizon must not increase Run's allocation count. The map-based occupancy
// this replaced allocated on every step and fails this test by hundreds of
// allocations.
func TestRunAllocsIndependentOfHorizon(t *testing.T) {
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{6, 4})
	if err != nil {
		t.Fatal(err)
	}
	plans := make(map[int]*warehouse.Plan)
	for _, T := range []int{800, 1600} {
		cs, err := cycles.Synthesize(s, wl, T, cycles.Options{})
		if err != nil {
			t.Fatal(err)
		}
		plan, _, err := agentplan.Realize(cs, wl, T)
		if err != nil {
			t.Fatal(err)
		}
		plans[T] = plan
	}
	allocs := func(T int) float64 {
		return testing.AllocsPerRun(10, func() {
			res := Run(w, plans[T], wl)
			if len(res.Violations) != 0 {
				t.Fatalf("violations: %v", res.Violations[0])
			}
		})
	}
	short, long := allocs(800), allocs(1600)
	// Setup allocations (Result slices, delivery log) are allowed; growth
	// with the horizon is not. The small slack absorbs DeliveryTimes
	// regrowth for the extra deliveries a longer plan performs.
	if long > short+8 {
		t.Errorf("Run allocations grew with horizon: %v at T=800, %v at T=1600", short, long)
	}
}

// TestExecuteMCPAllocsIndependentOfHorizon pins the same property for the
// minimal-communication executor, whose occupancy also lived in a map.
func TestExecuteMCPAllocsIndependentOfHorizon(t *testing.T) {
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{6, 4})
	if err != nil {
		t.Fatal(err)
	}
	plans := make(map[int]*warehouse.Plan)
	for _, T := range []int{800, 1600} {
		cs, err := cycles.Synthesize(s, wl, T, cycles.Options{})
		if err != nil {
			t.Fatal(err)
		}
		plan, _, err := agentplan.Realize(cs, wl, T)
		if err != nil {
			t.Fatal(err)
		}
		plans[T] = plan
	}
	allocs := func(T int) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := ExecuteMCP(w, plans[T], wl, nil, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := allocs(800), allocs(1600)
	// The plan-compression prologue allocates proportionally to the number
	// of distinct cells visited, which grows with T; the wall-clock loop
	// itself must not allocate. Compression appends amortize, so allow a
	// factor well below the 2x horizon growth.
	if long > 1.5*short+16 {
		t.Errorf("ExecuteMCP allocations grew with horizon: %v at T=800, %v at T=1600", short, long)
	}
}
