package lp

import (
	"fmt"
	"math/big"
)

// Engine selects the arithmetic the branch-and-bound relaxations use.
type Engine int

// Available engines.
const (
	// EngineExact uses the exact rational simplex for every relaxation:
	// int64 numerator/denominator arithmetic promoted transparently to
	// big.Rat on overflow. Complete and exact.
	EngineExact Engine = iota
	// EngineFloat uses the float64 simplex for relaxations and verifies the
	// final incumbent exactly with Problem.Check. Fast; an (unlikely)
	// spurious float infeasibility can prune a feasible subtree, so a
	// StatusInfeasible answer from this engine is "almost certainly
	// infeasible" rather than a proof.
	EngineFloat
)

// ILPOptions tunes SolveILP.
type ILPOptions struct {
	Engine Engine
	// MaxNodes bounds the branch-and-bound search tree; 0 means the default
	// (200000). When exhausted the solver returns StatusLimit (or the best
	// incumbent found so far, if any).
	MaxNodes int
	// MaxWork bounds the total tableau work across the whole branch-and-
	// bound run, measured in row-update operations (rows touched by an
	// elimination × row length); 0 means unlimited. Neither nodes nor
	// pivots bound latency on large tableaus: a warm reentry of a
	// feasibility relaxation can wander for thousands of pivots (zero
	// objective ⇒ the dual simplex has no monotone progress measure), and
	// a pivot's cost itself grows with fill-in. Work units are
	// deterministic and machine-independent; exhaustion returns
	// StatusLimit, like MaxNodes. The revised engine charges the same
	// units per pivot as the dense elimination would, so budgeted searches
	// stay bit-identical across representations.
	MaxWork int64
	// Simplex overrides the exact engines' representation: dense tableau
	// or LU-factorized revised simplex (SimplexAuto selects by instance
	// size). Answers are bit-identical either way. The float engine
	// ignores it and always runs dense.
	Simplex SimplexEngine
	// Cancel, when non-nil, aborts the search as soon as the channel
	// fires (normally a context's Done channel). The check piggybacks on
	// the MaxWork accounting tick — once per pivot — so the pivot hot
	// path stays unbranched between ticks, a cancelled search returns
	// StatusCanceled within one tick, and an uncancelled search performs
	// exactly the arithmetic it would with no channel installed.
	Cancel <-chan struct{}
	// RootCuts separates Gomory fractional and knapsack-cover cutting
	// planes at the branch-and-bound root (exact engines only; the float
	// engine ignores it) and appends them as extra constraint rows before
	// the search. Cuts never exclude an integer-feasible point, so the
	// optimal value is unchanged; with alternate integer optima the search
	// may surface a different one than the cut-free tree. See cuts.go.
	RootCuts bool
	// SearchParallel distributes open branch-and-bound subtrees across up
	// to this many workers, one arena per worker (0 or 1 = sequential).
	// The returned Solution, status, and budget verdict are bit-identical
	// to the sequential search for every worker count: the search is
	// decomposed at deterministic frontier fences into cold-rooted subtree
	// tasks whose outcomes merge in work order, with speculative runs
	// re-validated against the exact incumbent and budget state at commit
	// time (see parallel.go). Effective extra workers are additionally
	// clamped by a process-wide GOMAXPROCS-sized token pool, so nested
	// parallelism (a solver pool of concurrent searches) cannot
	// oversubscribe the machine — clamping never changes answers. The
	// hybrid solve mode ignores the knob (its replay tree must be
	// certified on one arena); its exact fallback honors it.
	SearchParallel int
	// AutoRows overrides the SimplexAuto size crossover (see
	// SolveOptions.AutoRows); 0 keeps the calibrated default. A pure
	// representation-routing knob: answers and budget verdicts are
	// unchanged at any setting.
	AutoRows int
}

// arena is the engine surface branch-and-bound and the Model layer drive,
// implemented by the dense tableau and the revised engine. Every method
// pair is decision-identical between the two, which is what keeps an
// arena swap invisible in the returned Solutions.
type arena[T any] interface {
	prob() *Problem
	startSearch(workBudget int64)
	setWorkBudget(int64)
	workSpent() int64
	dropWarm()
	setCancel(<-chan struct{})
	canceled() bool
	solveNode(lo, hi []*big.Rat) Status
	resolveModel(lo, hi []*big.Rat) Status
	value(j int) T
	extractInto(dst []*big.Rat)
	firstFractionalInt() int
	objectiveValue() T
}

// SolveILP solves the mixed-integer program p by branch and bound over the
// simplex relaxation. For pure feasibility problems (no objective) it stops
// at the first integral solution. Every returned solution is exactly
// verified against p with rational arithmetic.
//
// The search keeps ONE tableau arena for the whole tree: a child node
// differs from its parent by a single bound, so each relaxation warm-starts
// from the previous node's basis with a few dual-simplex pivots (falling
// back to a cold solve only when the basis cannot be retargeted), and node
// bounds live in a parent-linked diff chain instead of per-node slices.
func SolveILP(p *Problem, opts ILPOptions) (*Solution, error) {
	if opts.Engine == EngineFloat {
		// Float relaxations: revised partial-pricing engine above the size
		// crossover, dense tableau below — same auto rule as the exact
		// engines (candidates are exactly verified either way).
		spawn := func() arena[float64] { return floatArena(p, opts.Simplex, opts.AutoRows) }
		return bbSolveHooked(p, floatArena(p, opts.Simplex, opts.AutoRows), floatArith{eps: defaultEps}, opts, bbHooks[float64]{spawn: spawn})
	}
	if opts.RootCuts {
		return solveILPRootCuts(p, opts)
	}
	if opts.Simplex == SimplexHybrid {
		return solveILPHybrid(p, opts)
	}
	rev := pickSimplex(p, opts.Simplex, opts.AutoRows) == SimplexRevised
	var sol *Solution
	var err error
	if promote(func() { sol, err = bbSolve[rat64, rat64Arith](p, rat64Arith{}, opts, rev) }) {
		return sol, err
	}
	return bbSolve[*big.Rat, ratArith](p, ratArith{}, opts, rev)
}

func bbSolve[T any, A arith[T]](p *Problem, ar A, opts ILPOptions, revisedEngine bool) (*Solution, error) {
	tb := freshArena[T, A](p, ar, revisedEngine)
	spawn := func() arena[T] { return freshArena[T, A](p, ar, revisedEngine) }
	return bbSolveHooked(p, tb, ar, opts, bbHooks[T]{spawn: spawn})
}

// bbSolveTableau is the branch-and-bound search over a caller-provided
// arena (dense or revised). Model.ResolveILP passes a retained arena here;
// resetting the warm state and work counter first makes the search replay
// exactly the pivot sequence a fresh arena would, so incremental re-solves
// stay bit-identical to from-scratch ones while skipping the arena
// (re)build. spawn builds extra arenas of the same representation for the
// parallel executor (nil keeps the search sequential); box supplies a
// memoized integer box (nil derives one per solve).
func bbSolveTableau[T any, A arith[T]](p *Problem, tb arena[T], ar A, opts ILPOptions, spawn func() arena[T], box func() *boundDiff) (*Solution, error) {
	return bbSolveHooked(p, tb, ar, opts, bbHooks[T]{spawn: spawn, box: box})
}

// bbHooks customizes bbSolveHooked: an alternate root reset that keeps an
// adopted warm basis and a per-node certificate (both for the hybrid search,
// hybrid.go), and an arena factory enabling the parallel frontier executor
// (parallel.go) to give each worker its own arena. The zero value is the
// plain sequential search.
type bbHooks[T any] struct {
	start   func(workBudget int64) // nil: tb.startSearch (cold root)
	certify func() bool            // nil: no certification
	spawn   func() arena[T]        // nil: parallel execution disabled
	box     func() *boundDiff      // nil: integerBox(p) per solve
}

func bbSolveHooked[T any, A arith[T]](p *Problem, tb arena[T], ar A, opts ILPOptions, hooks bbHooks[T]) (*Solution, error) {
	tb.setCancel(opts.Cancel)
	if hooks.start != nil {
		hooks.start(opts.MaxWork) // hybrid root: adopted warm basis kept
	} else {
		tb.startSearch(opts.MaxWork) // cold root, as from a fresh arena
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200000
	}
	// Integer variables missing a bound side would let the branch chain
	// walk the open direction forever on an integer-infeasible instance;
	// derive an a priori box from the constraint data first (the walker's
	// open-march guard rejects whatever the box cannot cover). A retained
	// Model supplies its memoized chain through the hook.
	var box *boundDiff
	if hooks.box != nil {
		box = hooks.box()
	} else {
		box = integerBox(p)
	}
	return bbSearch(p, tb, ar, opts, hooks, maxNodes, box)
}

func betterOrEqual(p *Problem, obj, best *big.Rat) bool {
	if p.Maximize {
		return obj.Cmp(best) > 0
	}
	return obj.Cmp(best) < 0
}

func evalObjective(p *Problem, vals []*big.Rat) *big.Rat {
	obj := new(big.Rat)
	tmp := new(big.Rat)
	for _, t := range p.Objective {
		obj.Add(obj, tmp.Mul(t.Coef, vals[t.Var]))
	}
	return obj
}

// roundIntegers snaps integer variables to the nearest integer (they are
// integral or within float tolerance of it) and leaves continuous values.
func roundIntegers(p *Problem, vals []*big.Rat) []*big.Rat {
	out := make([]*big.Rat, len(vals))
	for i, v := range vals {
		if p.Vars[i].Integer && !v.IsInt() {
			out[i] = ratRound(v)
		} else {
			out[i] = new(big.Rat).Set(v)
		}
	}
	return out
}

// worstRounded returns the integer variable farthest from integrality, or -1
// if all integer variables are integral.
func worstRounded(p *Problem, vals []*big.Rat) int {
	worst, worstDist := -1, new(big.Rat)
	for i, v := range vals {
		if !p.Vars[i].Integer || v.IsInt() {
			continue
		}
		d := new(big.Rat).Sub(v, ratRound(v))
		d.Abs(d)
		if worst < 0 || d.Cmp(worstDist) > 0 {
			worst, worstDist = i, d
		}
	}
	return worst
}

// ratFloor returns ⌊r⌋ as a rational.
func ratFloor(r *big.Rat) *big.Rat {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	// big.Int.Quo truncates toward zero; adjust negatives with remainders.
	if r.Sign() < 0 && !r.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	return new(big.Rat).SetInt(q)
}

// ratRound returns the nearest integer to r (half away from zero).
func ratRound(r *big.Rat) *big.Rat {
	fl := ratFloor(r)
	frac := new(big.Rat).Sub(r, fl)
	if frac.Cmp(big.NewRat(1, 2)) >= 0 {
		return fl.Add(fl, big.NewRat(1, 1))
	}
	return fl
}

// MustInt converts a rational known to be integral into an int.
func MustInt(r *big.Rat) int {
	if !r.IsInt() {
		panic(fmt.Sprintf("lp: %s is not integral", r))
	}
	return int(r.Num().Int64())
}
