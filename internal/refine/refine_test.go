package refine

import (
	"context"
	"testing"

	"repro/internal/agentplan"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/maps"
	"repro/internal/testmaps"
	"repro/internal/warehouse"
	"repro/internal/workload"
)

func TestMergeCyclesReducesAgents(t *testing.T) {
	m, err := maps.SortingCenter()
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Uniform(m.W, 160)
	if err != nil {
		t.Fatal(err)
	}
	// Force fragmentation: a small leg cap produces extra cycles per loop.
	cs, err := cycles.Synthesize(m.S, wl, 3600, cycles.Options{MaxLegsPerCycle: 6})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeCycles(cs, wl)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumAgents() > cs.NumAgents() {
		t.Errorf("merge increased agents: %d -> %d", cs.NumAgents(), merged.NumAgents())
	}
	if len(merged.Cycles) >= len(cs.Cycles) && cs.NumAgents() > merged.NumAgents() {
		t.Errorf("expected fewer cycles after merge: %d -> %d", len(cs.Cycles), len(merged.Cycles))
	}
	// The merged set must still realize into a servicing plan.
	plan, stats, err := agentplan.Realize(merged, wl, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if v := warehouse.ValidatePlan(m.W, plan); len(v) > 0 {
		t.Fatalf("merged plan infeasible: %v", v[0])
	}
	if stats.ServicedAt < 0 {
		t.Error("merged plan does not service the workload")
	}
}

func TestMergeCyclesIdempotentOnCompactSets(t *testing.T) {
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{6, 4})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := cycles.Synthesize(s, wl, 800, cycles.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := MergeCycles(cs, wl)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MergeCycles(m1, wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Cycles) != len(m1.Cycles) || m2.NumAgents() != m1.NumAgents() {
		t.Errorf("second merge changed the set: %d/%d -> %d/%d cycles/agents",
			len(m1.Cycles), m1.NumAgents(), len(m2.Cycles), m2.NumAgents())
	}
}

func TestMinimalHorizonShrinks(t *testing.T) {
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{10, 5})
	if err != nil {
		t.Fatal(err)
	}
	const T = 2400
	base, err := core.Solve(context.Background(), s, wl, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := MinimalHorizon(context.Background(), s, wl, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hr.T > T {
		t.Errorf("minimal horizon %d exceeds original %d", hr.T, T)
	}
	if hr.T > base.Sim.ServicedAt*2 {
		t.Errorf("minimal horizon %d far above the observed makespan %d", hr.T, base.Sim.ServicedAt)
	}
	// The refined solution must actually service at its tighter horizon.
	if ok, why := warehouse.Services(w, hr.Result.Plan, wl); !ok {
		t.Errorf("refined solution does not service: %v", why)
	}
	if hr.Probes < 2 {
		t.Errorf("suspiciously few probes: %d", hr.Probes)
	}
	// Feasibility is not monotone in T (warm-up margins quantize with qc),
	// so hr.T is a certified upper bound rather than the global minimum; it
	// must still beat the generous original horizon substantially.
	if hr.T >= T {
		t.Errorf("no improvement: %d >= %d", hr.T, T)
	}
}

// TestMinimalHorizonContractILP drives the horizon search over the faithful
// §IV-D contract→ILP synthesis path. Each probe re-solves the contract
// conjunction by branch and bound, which the bounded-variable LP core's
// warm-started search makes cheap enough to binary-search over.
func TestMinimalHorizonContractILP(t *testing.T) {
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{8, 5})
	if err != nil {
		t.Fatal(err)
	}
	const T = 1600
	hr, err := MinimalHorizon(context.Background(), s, wl, T, core.Options{Strategy: core.ContractILP})
	if err != nil {
		t.Fatal(err)
	}
	if hr.T >= T {
		t.Errorf("no improvement: %d >= %d", hr.T, T)
	}
	if ok, why := warehouse.Services(w, hr.Result.Plan, wl); !ok {
		t.Errorf("refined contract-ILP solution does not service: %v", why)
	}
}

func TestMinimalHorizonErrors(t *testing.T) {
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{300, 300})
	if err != nil {
		t.Fatal(err)
	}
	// Unsolvable at this horizon at all.
	if _, err := MinimalHorizon(context.Background(), s, wl, 120, core.Options{}); err == nil {
		t.Error("unsolvable instance accepted")
	}
	wl2, _ := warehouse.NewWorkload(w, []int{1, 0})
	if _, err := MinimalHorizon(context.Background(), s, wl2, 5, core.Options{}); err == nil {
		t.Error("horizon below a cycle period accepted")
	}
	if _, err := MinimalHorizon(context.Background(), s, wl2, 800, core.Options{SkipRealization: true}); err == nil {
		t.Error("SkipRealization accepted")
	}
}
