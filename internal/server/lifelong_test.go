package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server/faultinject"
	"repro/wsp"
)

// lifelongRequest is the canonical two-batch streaming request against the
// inline test instance: a release at t=0 and one at t=800, forcing two
// epochs within a 2400-step horizon.
func lifelongRequest(t *testing.T) LifelongRequest {
	t.Helper()
	return LifelongRequest{
		InstanceSpec: InstanceSpec{Instance: testInstance(t), Horizon: 2400},
		Batches: []LifelongBatchSpec{
			{Release: 0, Units: 6},
			{Release: 800, Units: 6},
		},
	}
}

// stallHook blocks the nth intercepted call until release closes (or the
// request context fires), passing all others through. Call order on
// /v1/lifelong: 1 = pre-run, 2 = after epoch 1, 3 = after epoch 2, ...
func stallHook(n int64, started chan<- struct{}, release <-chan struct{}) faultinject.Hook {
	var seen atomic.Int64
	return func(ctx context.Context, _ faultinject.Info) error {
		if seen.Add(1) != n {
			return nil
		}
		close(started)
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return context.Cause(ctx)
		}
	}
}

// TestLifelongStreamsEpochs is the endpoint's core contract: epoch lines
// are flushed while the run is still going (the first epoch line is
// readable while epoch 2 is stalled mid-run), and the terminal report line
// matches a direct wsp.Solver.Lifelong call bit-for-bit.
func TestLifelongStreamsEpochs(t *testing.T) {
	req := lifelongRequest(t)
	started := make(chan struct{})
	release := make(chan struct{})
	srv := New(Config{Fault: stallHook(3, started, release)})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	defer srv.Drain(context.Background())

	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+l.Addr().String()+"/v1/lifelong", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q, want application/x-ndjson", ct)
	}

	// Epoch 1's line must arrive while the run is stalled before epoch 2's
	// line — streaming, not buffer-then-dump.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	<-started // the run is provably mid-flight: stalled after epoch 2's solve
	var first LifelongEpochLine
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line %q: %v", sc.Text(), err)
	}
	if first.Type != "epoch" || first.Epoch != 1 {
		t.Fatalf("first line = %+v, want epoch 1", first)
	}
	if first.End != first.Start+first.Changeover+first.ServicedAt {
		t.Errorf("epoch line timeline inconsistent: %+v", first)
	}
	close(release)

	var lines []json.RawMessage
	for sc.Scan() {
		lines = append(lines, append(json.RawMessage(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines after epoch 1, want 2 (epoch 2 + report)", len(lines))
	}
	var second LifelongEpochLine
	if err := json.Unmarshal(lines[0], &second); err != nil || second.Type != "epoch" || second.Epoch != 2 {
		t.Fatalf("second line %s: %+v (%v)", lines[0], second, err)
	}
	var report LifelongReportLine
	if err := json.Unmarshal(lines[1], &report); err != nil || report.Type != "report" {
		t.Fatalf("last line %s: %v", lines[1], err)
	}
	if !report.OK || report.Degraded {
		t.Fatalf("report = %+v, want ok and undegraded", report)
	}

	// The streamed run answers exactly what a library user gets.
	sys, _, err := wsp.DecodeInstance(req.Instance)
	if err != nil {
		t.Fatal(err)
	}
	var batches []wsp.Batch
	for _, bs := range req.Batches {
		wl, err := wsp.UniformWorkload(sys.W, bs.Units)
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, wsp.Batch{Release: bs.Release, Units: wl.Units})
	}
	want, err := wsp.NewFromConfig(wsp.Config{}).Lifelong(context.Background(), sys, batches, 2400)
	if err != nil {
		t.Fatal(err)
	}
	if report.Epochs != want.Epochs || report.PeakAgents != want.PeakAgents ||
		!reflect.DeepEqual(report.Delivered, want.Delivered) {
		t.Errorf("report %+v diverges from direct run %+v", report, want)
	}
	for i, b := range want.Batches {
		got := report.Batches[i]
		if got.Release != b.Release || got.Units != b.Units || got.Completed != b.Completed {
			t.Errorf("batch %d: %+v, direct run says %+v", i, got, b)
		}
	}
	if m := srv.Metrics(); m["completed_total"] != 1 {
		t.Errorf("completed_total = %d, want 1", m["completed_total"])
	}
}

// TestLifelongClientDisconnectIs499: a client hanging up before the first
// epoch gets the regular 499 envelope, exactly like /v1/solve.
func TestLifelongClientDisconnectIs499(t *testing.T) {
	started := make(chan struct{})
	srv := New(Config{
		Fault: func(ctx context.Context, _ faultinject.Info) error {
			close(started)
			<-ctx.Done()
			return context.Cause(ctx)
		},
	})

	buf, err := json.Marshal(lifelongRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/lifelong", bytes.NewReader(buf)).WithContext(ctx)
	go func() {
		<-started
		cancel()
	}()
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)

	if w.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want 499: %s", w.Code, w.Body.String())
	}
	if resp := decodeAs[ErrorResponse](t, w); resp.Code != "client-closed-request" {
		t.Errorf("code %q, want client-closed-request", resp.Code)
	}
	if m := srv.Metrics(); m["client_gone_total"] != 1 {
		t.Errorf("client_gone_total = %d, want 1", m["client_gone_total"])
	}
}

// TestLifelongMidStreamDisconnect: once epoch lines have been streamed the
// status line is committed, so a disconnect surfaces as the client-gone
// counter (and an unread in-band error line), and the run stops instead of
// grinding to the horizon.
func TestLifelongMidStreamDisconnect(t *testing.T) {
	started := make(chan struct{})
	// The hook fires before each epoch's line is written, so stalling call 3
	// leaves epoch 1's line flushed and the run held mid-epoch-2. A third
	// batch keeps the run alive past the abort point: the disconnect must
	// cancel epoch 3's solve, not coast over an already-finished run.
	srv := New(Config{Fault: stallHook(3, started, nil)})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	defer srv.Drain(context.Background())

	req := lifelongRequest(t)
	req.Batches = append(req.Batches, LifelongBatchSpec{Release: 1600, Units: 6})
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+l.Addr().String()+"/v1/lifelong", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	var first LifelongEpochLine
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil || first.Type != "epoch" {
		t.Fatalf("first line %q: %v", sc.Text(), err)
	}
	<-started // epoch 1 streamed, run stalled on the hook
	cancel()  // the client hangs up mid-stream

	waitFor(t, func() bool { return srv.Metrics()["client_gone_total"] == 1 })
	if m := srv.Metrics(); m["completed_total"] != 0 {
		t.Errorf("completed_total = %d, want 0 (run must abort)", m["completed_total"])
	}
}

// TestLifelongDeadlineIs504: the server's deadline policy governs lifelong
// runs like any solve.
func TestLifelongDeadlineIs504(t *testing.T) {
	srv := New(Config{Fault: faultinject.Sleep(10 * time.Second)})
	req := lifelongRequest(t)
	req.DeadlineMS = 30
	w := postJSON(t, srv.Handler(), "/v1/lifelong", req, nil)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body.String())
	}
	if resp := decodeAs[ErrorResponse](t, w); resp.Code != "deadline-exceeded" {
		t.Errorf("code %q, want deadline-exceeded", resp.Code)
	}
	if m := srv.Metrics(); m["deadline_total"] != 1 {
		t.Errorf("deadline_total = %d, want 1", m["deadline_total"])
	}
}

// TestLifelongDrainClean: a drain started mid-stream lets the run finish
// (its report line included) while new lifelong runs are refused.
func TestLifelongDrainClean(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	srv := New(Config{Fault: stallHook(3, started, release)}) // hold after epoch 1's line

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()

	buf, err := json.Marshal(lifelongRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	type streamResult struct {
		lines []string
		err   error
	}
	inflight := make(chan streamResult, 1)
	go func() {
		resp, err := http.Post(base+"/v1/lifelong", "application/json", bytes.NewReader(buf))
		if err != nil {
			inflight <- streamResult{err: err}
			return
		}
		defer resp.Body.Close()
		var res streamResult
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			res.lines = append(res.lines, sc.Text())
		}
		res.err = sc.Err()
		inflight <- res
	}()
	<-started // epoch 1's line streamed, run stalled mid-epoch-2

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- srv.Drain(ctx)
	}()
	waitFor(t, func() bool { return srv.draining.Load() })

	w := postJSON(t, srv.Handler(), "/v1/lifelong", lifelongRequest(t), nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("lifelong during drain: status %d, want 503: %s", w.Code, w.Body.String())
	}
	if resp := decodeAs[ErrorResponse](t, w); resp.Code != "draining" {
		t.Errorf("code %q, want draining", resp.Code)
	}

	close(release)
	got := <-inflight
	if got.err != nil {
		t.Fatalf("in-flight stream: %v (drain must not cut admitted streams)", got.err)
	}
	if len(got.lines) == 0 {
		t.Fatal("in-flight stream got no lines")
	}
	var report LifelongReportLine
	if err := json.Unmarshal([]byte(got.lines[len(got.lines)-1]), &report); err != nil || report.Type != "report" || !report.OK {
		t.Fatalf("stream did not end in an ok report line: %q (%v)", got.lines[len(got.lines)-1], err)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain not clean: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

// TestLifelongValidation covers the endpoint's 400/422 guards.
func TestLifelongValidation(t *testing.T) {
	srv := New(Config{MaxBatch: 2})
	inst := testInstance(t)
	cases := []struct {
		name string
		req  LifelongRequest
		code int
	}{
		{"no-batches", LifelongRequest{
			InstanceSpec: InstanceSpec{Instance: inst},
		}, http.StatusBadRequest},
		{"too-many-batches", LifelongRequest{
			InstanceSpec: InstanceSpec{Instance: inst, Horizon: 2400},
			Batches:      []LifelongBatchSpec{{Release: 0, Units: 1}, {Release: 1, Units: 1}, {Release: 2, Units: 1}},
		}, http.StatusUnprocessableEntity},
		{"top-level-units", LifelongRequest{
			InstanceSpec: InstanceSpec{Instance: inst, Units: 5, Horizon: 2400},
			Batches:      []LifelongBatchSpec{{Release: 0, Units: 6}},
		}, http.StatusBadRequest},
		{"release-out-of-range", LifelongRequest{
			InstanceSpec: InstanceSpec{Instance: inst, Horizon: 2400},
			Batches:      []LifelongBatchSpec{{Release: 2400, Units: 6}},
		}, http.StatusBadRequest},
		{"both-demand-forms", LifelongRequest{
			InstanceSpec: InstanceSpec{Instance: inst, Horizon: 2400},
			Batches:      []LifelongBatchSpec{{Release: 0, Units: 6, PerProduct: []int{1, 1}}},
		}, http.StatusBadRequest},
		{"wrong-product-count", LifelongRequest{
			InstanceSpec: InstanceSpec{Instance: inst, Horizon: 2400},
			Batches:      []LifelongBatchSpec{{Release: 0, PerProduct: []int{1, 1, 1}}},
		}, http.StatusBadRequest},
		{"empty-batch", LifelongRequest{
			InstanceSpec: InstanceSpec{Instance: inst, Horizon: 2400},
			Batches:      []LifelongBatchSpec{{Release: 0}},
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		w := postJSON(t, srv.Handler(), "/v1/lifelong", tc.req, nil)
		if w.Code != tc.code {
			t.Errorf("%s: status %d, want %d: %s", tc.name, w.Code, tc.code, w.Body.String())
		}
	}
}

// TestPerClientMetrics: the admission gate keeps a per-client ledger —
// requests, 429s, work charged — exported as a nested /debug/vars object
// and client-labeled Prometheus series, with cardinality bounded by the
// client-table limit.
func TestPerClientMetrics(t *testing.T) {
	inst := testInstance(t)
	srv := New(Config{
		MaxClients:  2,
		ClientBurst: 20_000_000, // exactly one default-cost solve
		ClientRate:  1,          // no meaningful refill within the test
	})
	post := func(client string) *httptest.ResponseRecorder {
		return postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
			InstanceSpec: InstanceSpec{Instance: inst},
		}, map[string]string{"X-Client-ID": client})
	}
	if w := post("alice"); w.Code != http.StatusOK {
		t.Fatalf("alice solve 1: status %d: %s", w.Code, w.Body.String())
	}
	if w := post("alice"); w.Code != http.StatusTooManyRequests {
		t.Fatalf("alice solve 2: status %d, want 429: %s", w.Code, w.Body.String())
	}
	if w := post("bob"); w.Code != http.StatusOK {
		t.Fatalf("bob solve: status %d: %s", w.Code, w.Body.String())
	}

	clients := srv.adm.clientStats()
	if got := clients["alice"]; got.Requests != 2 || got.Rejected != 1 || got.WorkCharged != 20_000_000 {
		t.Errorf("alice ledger = %+v, want {2 1 20000000}", got)
	}
	if got := clients["bob"]; got.Requests != 1 || got.Rejected != 0 || got.WorkCharged != 20_000_000 {
		t.Errorf("bob ledger = %+v, want {1 0 20000000}", got)
	}

	// /debug/vars carries the ledgers as a nested object.
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	vars := decodeAs[map[string]json.RawMessage](t, w)
	var varClients map[string]ClientStats
	if err := json.Unmarshal(vars["clients"], &varClients); err != nil {
		t.Fatalf("vars clients: %v", err)
	}
	if !reflect.DeepEqual(varClients, clients) {
		t.Errorf("vars clients %+v != snapshot %+v", varClients, clients)
	}

	// /metrics carries them as client-labeled series.
	w = httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE wspd_client_requests_total counter\n",
		"wspd_client_requests_total{client=\"alice\"} 2\n",
		"wspd_client_rejected_total{client=\"alice\"} 1\n",
		"wspd_client_work_charged_total{client=\"alice\"} 20000000\n",
		"wspd_client_requests_total{client=\"bob\"} 1\n",
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Errorf("metrics missing %q; body:\n%s", want, body)
		}
	}

	// A third client evicts the stalest ledger: cardinality stays at the
	// table bound.
	if w := post("carol"); w.Code != http.StatusOK {
		t.Fatalf("carol solve: status %d: %s", w.Code, w.Body.String())
	}
	if clients := srv.adm.clientStats(); len(clients) > 2 {
		t.Errorf("client ledger cardinality %d exceeds MaxClients 2: %+v", len(clients), clients)
	}
}

// TestDegradationUnderRealLoad drives the ladder with real concurrent
// traffic instead of a synthesized load window: one stalled solve pins the
// single in-flight slot while a burst of /v1/solve and /v1/lifelong
// requests is rejected at the door, and the next admitted exact-contract
// solve is answered degraded.
func TestDegradationUnderRealLoad(t *testing.T) {
	inst := testInstance(t)
	started := make(chan struct{})
	release := make(chan struct{})
	srv := New(Config{
		MaxInFlight: 1,
		Solver:      wsp.Config{Strategy: wsp.ContractILP, Exact: true},
		Fault: func(ctx context.Context, info faultinject.Info) error {
			if info.Client != "staller" {
				return nil
			}
			close(started)
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return context.Cause(ctx)
			}
		},
	})

	// One admitted solve holds the only slot...
	stalled := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		stalled <- postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
			InstanceSpec: InstanceSpec{Instance: inst},
		}, map[string]string{"X-Client-ID": "staller"})
	}()
	<-started

	// ...while a concurrent burst of solve and lifelong traffic is shed
	// with real 429s — this is the load signal, no synthetic window.
	var wg sync.WaitGroup
	var rejected atomic.Int64
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hdr := map[string]string{"X-Client-ID": fmt.Sprintf("flood-%d", i)}
			var w *httptest.ResponseRecorder
			if i%2 == 0 {
				w = postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
					InstanceSpec: InstanceSpec{Instance: inst},
				}, hdr)
			} else {
				w = postJSON(t, srv.Handler(), "/v1/lifelong", LifelongRequest{
					InstanceSpec: InstanceSpec{Instance: inst, Horizon: 2400},
					Batches:      []LifelongBatchSpec{{Release: 0, Units: 6}},
				}, hdr)
			}
			if w.Code == http.StatusTooManyRequests {
				rejected.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if got := rejected.Load(); got != 12 {
		t.Fatalf("%d of 12 burst requests rejected, want all (slot is pinned)", got)
	}
	close(release)
	if w := <-stalled; w.Code != http.StatusOK {
		t.Fatalf("stalled solve: status %d: %s", w.Code, w.Body.String())
	}

	// The rejection pressure (12 of 14 admission decisions) positions the
	// ladder at rung 2: float arithmetic + route packing.
	w := postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
		InstanceSpec: InstanceSpec{Instance: inst},
	}, map[string]string{"X-Client-ID": "probe"})
	if w.Code != http.StatusOK {
		t.Fatalf("probe solve: status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeAs[SolveResponse](t, w)
	if !resp.Degraded {
		t.Fatalf("probe solve not degraded under real load: %+v", resp)
	}
	steps := map[string]bool{}
	for _, s := range resp.DegradeSteps {
		steps[s] = true
	}
	if !steps["float-arith"] || !steps["route-packing"] {
		t.Errorf("degrade steps %v, want float-arith and route-packing", resp.DegradeSteps)
	}
	if resp.Strategy != "route-packing" {
		t.Errorf("degraded strategy %q, want route-packing", resp.Strategy)
	}
	if m := srv.Metrics(); m["rejected_load_total"] != 12 || m["degraded_total"] == 0 {
		t.Errorf("load counters: rejected=%d degraded=%d", m["rejected_load_total"], m["degraded_total"])
	}
}
