// Package lifelong runs the warehouse over an open-ended horizon with
// workload batches released over time — the lifelong variant of the WSP,
// mirroring how lifelong MAPD extends one-shot MAPD (§II-A).
//
// The controller is epoch-based: whenever a batch is released, outstanding
// demand is re-synthesized into a fresh agent cycle set for the remaining
// horizon and realized from scratch. The changeover between epochs is
// charged one full cycle time (agents redeploy to their new initial cells;
// DESIGN.md discusses the abstraction). Within an epoch the usual
// guarantees hold: the plan is collision-free and validated.
package lifelong

import (
	"context"

	"repro/internal/core"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// Batch is a demand vector released at a point in time.
type Batch struct {
	Release int   // timestep the batch becomes known
	Units   []int // per-product demand
}

// Options tunes Run.
type Options struct {
	// Core options forwarded to each epoch's Solve.
	Core core.Options
	// Observer, when non-nil, receives engine events (epoch reports,
	// per-batch delivery attributions, batch completions) as the run
	// progresses. A nil Observer runs event-free: the engine skips all
	// event bookkeeping, so observation costs nothing when unused.
	Observer Observer
	// ThroughputWindow is the bin width, in timesteps, of the streaming
	// throughput series carried on EpochReport. Zero means one cycle time.
	// Only consulted when Observer is set.
	ThroughputWindow int
}

// BatchStats reports one batch's fate.
type BatchStats struct {
	Release   int
	Completed int // timestep all of the batch's units were delivered, -1 if never
	Units     int
}

// EpochInfo records one epoch's timeline. Each epoch changeover is charged
// exactly one cycle time (agents redeploy to their new initial cells), so
// End = Start + Changeover + ServicedAt always holds.
type EpochInfo struct {
	Start      int // timestep the epoch was planned at
	Horizon    int // planning horizon handed to the solver
	Changeover int // redeployment charge: one cycle time
	ServicedAt int // simulated servicing timestep within the epoch
	End        int // Start + Changeover + ServicedAt
}

// Report summarizes a lifelong run.
type Report struct {
	Batches []BatchStats
	// Epochs counts re-synthesis rounds.
	Epochs int
	// EpochLog records each epoch's timeline, in order.
	EpochLog []EpochInfo
	// PeakAgents is the largest team any epoch deployed.
	PeakAgents int
	// Delivered is the total delivered per product.
	Delivered []int
}

// Run services all batches within T timesteps. Batches must have
// non-negative release times below T and demand vectors sized to the
// warehouse; batches sharing a release time are merged into one (their
// demand summed), so the Report carries one BatchStats per distinct
// release.
//
// Run drives an Engine to completion: it is exactly NewEngine followed by
// Step until done. Cancelling ctx aborts the epoch in flight; the partial
// Report (epochs completed so far) is returned alongside an error wrapping
// lp.ErrCanceled.
func Run(ctx context.Context, s *traffic.System, batches []Batch, T int, opts Options) (*Report, error) {
	e, err := NewEngine(s, batches, T, opts)
	if err != nil {
		return nil, err
	}
	for {
		done, err := e.Step(ctx)
		if err != nil {
			return e.Report(), err
		}
		if done {
			return e.Report(), nil
		}
	}
}

func sumPos(units []int) int {
	total := 0
	for _, u := range units {
		total += u
	}
	return total
}

func halve(units []int) []int {
	out := make([]int, len(units))
	for i, u := range units {
		out[i] = u / 2
	}
	return out
}

// deplete removes n units from a stock row, draining columns greedily.
func deplete(row []int, n int) {
	for i := range row {
		if n == 0 {
			return
		}
		take := row[i]
		if take > n {
			take = n
		}
		row[i] -= take
		n -= take
	}
}

// clampByStock caps each product's demand at total stock (re-synthesis per
// epoch re-counts the full stock; execution never over-draws because each
// epoch's realization is stock-checked).
func clampByStock(w *warehouse.Warehouse, units []int) []int {
	out := make([]int, len(units))
	for k, u := range units {
		if stock := w.TotalStock(warehouse.ProductID(k)); u > stock {
			u = stock
		}
		out[k] = u
	}
	return out
}
